// Package bulletprime is a faithful reproduction of "Maintaining High
// Bandwidth under Dynamic Network Conditions" (Kostić et al., USENIX ATC
// 2005): the Bullet' mesh-based high-bandwidth data dissemination system,
// the baselines it was evaluated against (Bullet, BitTorrent, SplitStream),
// the Shotgun rapid-synchronization tool, the rateless erasure codes of
// §2.2, and a deterministic flow-level network emulator standing in for
// ModelNet.
//
// This file is the public façade: a downstream user can run a complete
// dissemination experiment — topology, dynamics, protocol, measurement —
// through RunConfig/Run without touching the internal packages.
//
//	res, err := bulletprime.Run(bulletprime.RunConfig{
//	    Protocol:  bulletprime.ProtocolBulletPrime,
//	    Nodes:     50,
//	    FileBytes: 20 << 20,
//	    Network:   bulletprime.NetworkModelNet,
//	    Seed:      1,
//	})
//
// The cmd/bulletctl tool regenerates every figure of the paper's
// evaluation; see DESIGN.md for the experiment index and EXPERIMENTS.md for
// measured results.
package bulletprime

import (
	"fmt"
	"sort"

	"bulletprime/internal/core"
	"bulletprime/internal/harness"
	"bulletprime/internal/netem"
	"bulletprime/internal/scenario"
	"bulletprime/internal/sim"
)

// Scenario is a declarative experiment schedule: link dynamics, trace
// replay, stochastic outages, churn, and flash-crowd waves, compiled onto
// the emulated network deterministically per seed. Build one with the
// scenario package's helpers or load a JSON file with LoadScenario, then
// set RunConfig.Scenario. See DESIGN.md §5 for the file format.
type Scenario = scenario.Scenario

// LoadScenario reads a JSON scenario file, resolving trace_file references
// relative to the scenario file's directory. Validation against a concrete
// overlay size happens in Run/Sweep (or scenario.Scenario.Compile).
func LoadScenario(path string) (*Scenario, error) {
	return scenario.LoadFile(path)
}

// Protocol selects the dissemination system for a run.
type Protocol string

// The four systems evaluated by the paper.
const (
	ProtocolBulletPrime Protocol = "bulletprime"
	ProtocolBullet      Protocol = "bullet"
	ProtocolBitTorrent  Protocol = "bittorrent"
	ProtocolSplitStream Protocol = "splitstream"
)

// NetworkPreset selects one of the paper's emulated environments.
type NetworkPreset string

// Presets matching the paper's experiment environments (§4.1, §4.4, §4.5,
// §4.7).
const (
	// NetworkModelNet: 6 Mbps access, 2 Mbps core, delay U[5,200) ms,
	// loss U[0,3%) — the main evaluation environment.
	NetworkModelNet NetworkPreset = "modelnet"
	// NetworkModelNetClean: same without random loss.
	NetworkModelNetClean NetworkPreset = "modelnet-clean"
	// NetworkConstrained: 800 Kbps access over a clean 10 Mbps core.
	NetworkConstrained NetworkPreset = "constrained"
	// NetworkHighBDP: 10 Mbps / 100 ms paths (large bandwidth-delay
	// product), no loss.
	NetworkHighBDP NetworkPreset = "highbdp"
	// NetworkPlanetLab: heterogeneous wide-area node mix.
	NetworkPlanetLab NetworkPreset = "planetlab"
	// NetworkClustered: co-located 25-node sites with fast clean links
	// inside a cluster and scarce lossy links between clusters — the
	// large-scale (1000-node) sweep environment.
	NetworkClustered NetworkPreset = "clustered"
)

// RequestStrategy re-exports the §3.3.2 request orderings.
type RequestStrategy = core.RequestStrategy

// The four request strategies of §3.3.2.
const (
	FirstEncountered = core.FirstEncountered
	RandomStrategy   = core.Random
	Rarest           = core.Rarest
	RarestRandom     = core.RarestRandom
)

// RunConfig describes one dissemination experiment.
type RunConfig struct {
	// Protocol defaults to ProtocolBulletPrime.
	Protocol Protocol
	// Nodes is the overlay size including the source (minimum 8).
	Nodes int
	// FileBytes is the file size; BlockSize defaults to 16 KB.
	FileBytes float64
	BlockSize float64
	// Network defaults to NetworkModelNet.
	Network NetworkPreset
	// DynamicBandwidth enables the §4.1 synthetic bandwidth-change
	// process (20 s period, cumulative halving).
	DynamicBandwidth bool
	// Scenario applies a declarative scenario (LoadScenario or the
	// scenario package's builders) on top of the preset network: link
	// dynamics, trace replay, outages, churn, flash-crowd waves. Composes
	// with DynamicBandwidth; same seed + same scenario ⇒ bit-identical
	// run.
	Scenario *Scenario
	// Seed makes the run reproducible; equal seeds share topology draws
	// across protocols.
	Seed int64
	// Deadline bounds simulated time (seconds); default 3600.
	Deadline float64
	// Parallel is the worker-pool size used when this config is the base of
	// a Sweep; 0 means one worker per CPU. A single Run ignores it.
	Parallel int

	// Bullet'-specific knobs (ignored by other protocols).
	Strategy          RequestStrategy // default RarestRandom
	StaticPeers       int             // pin peer-set size; 0 = adaptive
	StaticOutstanding int             // pin outstanding window; 0 = adaptive
	Encoded           bool            // source fountain-coding mode
}

// Result reports a run's outcome.
type Result struct {
	// CompletionTimes maps node id to download completion (seconds of
	// simulated time); the source is not included.
	CompletionTimes map[int]float64
	// Finished reports whether every node completed before the deadline.
	Finished bool
	// ControlOverhead is control bytes / total bytes delivered.
	ControlOverhead float64
}

// Median returns the median completion time.
func (r *Result) Median() float64 { return r.quantile(0.5) }

// Worst returns the slowest node's completion time.
func (r *Result) Worst() float64 { return r.quantile(1.0) }

// Best returns the fastest node's completion time.
func (r *Result) Best() float64 { return r.quantile(0.0) }

func (r *Result) quantile(q float64) float64 {
	if len(r.CompletionTimes) == 0 {
		return 0
	}
	xs := make([]float64, 0, len(r.CompletionTimes))
	for _, t := range r.CompletionTimes {
		xs = append(xs, t)
	}
	sort.Float64s(xs)
	i := int(q*float64(len(xs)-1) + 0.5)
	return xs[i]
}

// buildSpec validates and normalizes a RunConfig into a harness spec; Run
// and Sweep share it so a sweep's rigs are bit-identical to single runs.
func buildSpec(cfg RunConfig) (harness.SweepSpec, error) {
	var spec harness.SweepSpec
	if cfg.Nodes < 8 {
		return spec, fmt.Errorf("bulletprime: need at least 8 nodes, got %d", cfg.Nodes)
	}
	if cfg.FileBytes <= 0 {
		return spec, fmt.Errorf("bulletprime: FileBytes must be positive")
	}
	if cfg.Protocol == "" {
		cfg.Protocol = ProtocolBulletPrime
	}
	if cfg.Network == "" {
		cfg.Network = NetworkModelNet
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 16 * 1024
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 3600
	}

	var kind harness.ProtoKind
	switch cfg.Protocol {
	case ProtocolBulletPrime:
		kind = harness.KindBulletPrime
	case ProtocolBullet:
		kind = harness.KindBullet
	case ProtocolBitTorrent:
		kind = harness.KindBitTorrent
	case ProtocolSplitStream:
		kind = harness.KindSplitStream
	default:
		return spec, fmt.Errorf("bulletprime: unknown protocol %q", cfg.Protocol)
	}

	var topoFn func(*sim.RNG) *netem.Topology
	switch cfg.Network {
	case NetworkModelNet:
		topoFn = harness.ModelNetTopology(cfg.Nodes)
	case NetworkModelNetClean:
		topoFn = harness.LosslessModelNetTopology(cfg.Nodes)
	case NetworkConstrained:
		topoFn = harness.ConstrainedAccessTopology(cfg.Nodes)
	case NetworkHighBDP:
		topoFn = harness.HighBDPTopology(cfg.Nodes, 0, 0)
	case NetworkPlanetLab:
		topoFn = harness.PlanetLabTopology(cfg.Nodes)
	case NetworkClustered:
		topoFn = harness.ClusteredTopology(cfg.Nodes, 0)
	default:
		return spec, fmt.Errorf("bulletprime: unknown network preset %q", cfg.Network)
	}

	var dyn func(*harness.Rig)
	if cfg.DynamicBandwidth {
		dyn = harness.SyntheticBandwidthChanges(20)
	}

	var prog *scenario.Program
	if cfg.Scenario != nil {
		var err error
		prog, err = cfg.Scenario.Compile(cfg.Nodes)
		if err != nil {
			return spec, fmt.Errorf("bulletprime: %w", err)
		}
	}

	coreMut := func(c *core.Config) {
		c.Strategy = cfg.Strategy
		c.StaticPeers = cfg.StaticPeers
		c.StaticOutstanding = cfg.StaticOutstanding
		c.Encoded = cfg.Encoded
	}

	return harness.SweepSpec{
		Label:    fmt.Sprintf("%s/%s/seed%d", cfg.Protocol, cfg.Network, cfg.Seed),
		Seed:     cfg.Seed,
		TopoFn:   topoFn,
		Dynamics: dyn,
		Kind:     kind,
		Workload: harness.Workload{FileBytes: cfg.FileBytes, BlockSize: cfg.BlockSize},
		CoreMut:  coreMut,
		Deadline: sim.Time(cfg.Deadline),
		Scenario: prog,
	}, nil
}

// toResult converts a harness result to the public form.
func toResult(res *harness.RunResult) *Result {
	out := &Result{
		CompletionTimes: make(map[int]float64, len(res.PerNode)),
		Finished:        res.Finished,
		ControlOverhead: res.ControlOverhead(),
	}
	for id, t := range res.PerNode {
		out.CompletionTimes[int(id)] = float64(t)
	}
	return out
}

// Run executes the experiment and returns per-node results.
func Run(cfg RunConfig) (*Result, error) {
	spec, err := buildSpec(cfg)
	if err != nil {
		return nil, err
	}
	return toResult(harness.RunSpec(spec)), nil
}

// SweepConfig describes a parallel experiment sweep: the cross product of
// Seeds × Protocols × Networks applied to a base configuration. Empty lists
// default to the base config's single value.
type SweepConfig struct {
	// Base supplies everything not varied by the lists below; Base.Parallel
	// sets the worker-pool size (0 = one worker per CPU).
	Base      RunConfig
	Seeds     []int64
	Protocols []Protocol
	Networks  []NetworkPreset
}

// SweepRun is one cell of a sweep's cross product.
type SweepRun struct {
	Protocol Protocol
	Network  NetworkPreset
	Seed     int64
	Result   *Result
}

// Sweep fans the cross product of the config across a worker pool and
// returns one entry per run, ordered protocol-major, then network, then
// seed. Every cell is bit-identical to Run with the same single config.
func Sweep(cfg SweepConfig) ([]SweepRun, error) {
	seeds := cfg.Seeds
	if len(seeds) == 0 {
		seeds = []int64{cfg.Base.Seed}
	}
	protocols := cfg.Protocols
	if len(protocols) == 0 {
		p := cfg.Base.Protocol
		if p == "" {
			p = ProtocolBulletPrime
		}
		protocols = []Protocol{p}
	}
	networks := cfg.Networks
	if len(networks) == 0 {
		nw := cfg.Base.Network
		if nw == "" {
			nw = NetworkModelNet
		}
		networks = []NetworkPreset{nw}
	}

	var runs []SweepRun
	var specs []harness.SweepSpec
	for _, p := range protocols {
		for _, nw := range networks {
			for _, seed := range seeds {
				rc := cfg.Base
				rc.Protocol = p
				rc.Network = nw
				rc.Seed = seed
				spec, err := buildSpec(rc)
				if err != nil {
					return nil, err
				}
				runs = append(runs, SweepRun{Protocol: rc.Protocol, Network: rc.Network, Seed: seed})
				specs = append(specs, spec)
			}
		}
	}
	results := harness.Sweep(specs, cfg.Base.Parallel)
	for i, res := range results {
		runs[i].Result = toResult(res)
	}
	return runs, nil
}

// RenderFigure regenerates one of the paper's evaluation figures (4-15) at
// the given scale (1.0 = paper scale) and returns gnuplot-style text.
func RenderFigure(figure int, scale float64, seed int64) (string, error) {
	return harness.Render(figure, harness.Scale{Nodes: scale, File: scale}, seed)
}
