// Package bulletprime is a faithful reproduction of "Maintaining High
// Bandwidth under Dynamic Network Conditions" (Kostić et al., USENIX ATC
// 2005): the Bullet' mesh-based high-bandwidth data dissemination system,
// the baselines it was evaluated against (Bullet, BitTorrent, SplitStream),
// the Shotgun rapid-synchronization tool, the rateless erasure codes of
// §2.2, and a deterministic flow-level network emulator standing in for
// ModelNet.
//
// This file is the public façade. The unit of work is an experiment
// session: New validates a RunConfig into an Experiment handle, Subscribe
// attaches live metric observers (per-node block progress, instantaneous
// goodput, control overhead, scenario-event annotations), and Start/Wait —
// or the one-call Run method — execute it under a context, which can cancel
// the run mid-flight and still return the partial time-series.
//
//	exp, err := bulletprime.New(bulletprime.RunConfig{
//	    Protocol:  bulletprime.ProtocolBulletPrime,
//	    Nodes:     50,
//	    FileBytes: 20 << 20,
//	    Network:   bulletprime.NetworkModelNet,
//	    Seed:      1,
//	})
//	if err != nil { ... }
//	obs, _ := exp.Subscribe(bulletprime.ObserverConfig{Every: 5})
//	go func() {
//	    for s := range obs.Samples() {
//	        fmt.Printf("t=%.0fs %d/%d done, %.1f Mbps\n",
//	            s.Time, s.Completed, s.Receivers, s.GoodputBps*8/1e6)
//	    }
//	}()
//	res, err := exp.Run(ctx) // == Start(ctx) + Wait()
//
// Protocols and network presets are open registries (RegisterProtocol,
// RegisterNetwork): the paper's four systems and six environments
// self-register, and downstream packages can plug in their own without
// touching internal switches. The one-shot Run and Sweep functions remain
// as thin compatibility wrappers over sessions and produce bit-identical
// results for equal seeds.
//
// Results persist: setting RunConfig.Archive records every completed run
// and sweep cell into a content-addressed experiment archive on disk
// (identical reruns dedupe, changed configs never collide), and
// OpenArchive/ArchiveFilter/CompareArchived/ArchiveReport query archived
// runs back and diff them into paper-style comparison reports — the
// machinery behind bulletctl's ls/show/compare/report/gate subcommands
// and the CI bench gate.
//
// The cmd/bulletctl tool regenerates every figure of the paper's
// evaluation; see DESIGN.md for the experiment index (§6 documents the
// session API, §7 the experiment archive) and EXPERIMENTS.md for measured
// results.
package bulletprime

import (
	"fmt"
	"math"

	"bulletprime/internal/core"
	"bulletprime/internal/harness"
	"bulletprime/internal/obs"
	"bulletprime/internal/scenario"
	"bulletprime/internal/sim"
	"bulletprime/internal/stream"
	"bulletprime/internal/trace"
)

// Scenario is a declarative experiment schedule: link dynamics, trace
// replay, stochastic outages, churn, and flash-crowd waves, compiled onto
// the emulated network deterministically per seed. Build one with the
// scenario package's helpers or load a JSON file with LoadScenario, then
// set RunConfig.Scenario. See DESIGN.md §5 for the file format.
type Scenario = scenario.Scenario

// LoadScenario reads a JSON scenario file, resolving trace_file references
// relative to the scenario file's directory. Validation against a concrete
// overlay size happens in New/Run/Sweep (or scenario.Scenario.Compile).
func LoadScenario(path string) (*Scenario, error) {
	return scenario.LoadFile(path)
}

// Protocol selects the dissemination system for a run, resolved through
// the open protocol registry (see RegisterProtocol).
type Protocol string

// The four systems evaluated by the paper.
const (
	ProtocolBulletPrime Protocol = "bulletprime"
	ProtocolBullet      Protocol = "bullet"
	ProtocolBitTorrent  Protocol = "bittorrent"
	ProtocolSplitStream Protocol = "splitstream"
)

// ProtocolStream is Bullet' with delay-gradient sender selection
// (DESIGN.md §11): senders are ranked by a receiver-side one-way-delay
// bandwidth estimate instead of realized epoch throughput, so a congesting
// sender is demoted before loss shows up in its rate. It resolves to the
// harness's "BulletPrimeDelay" system and pairs naturally with
// RunConfig.Stream, but also runs one-shot workloads.
const ProtocolStream Protocol = "stream"

// ProtocolScalefill is the sharded engine's reference workload: every node
// pulls the file through intra-cluster transfers under per-shard link
// churn, with cross-shard token coupling. It requires EngineSharded and a
// clustered network preset; it is the workload behind the Scale50000
// preset and the sharded-vs-sequential equivalence tests.
const ProtocolScalefill Protocol = "scalefill"

// EngineMode selects a run's execution engine; see the RunConfig.Engine
// field. It re-exports harness.EngineMode.
type EngineMode = harness.EngineMode

const (
	// EngineSequential is the default single-threaded event loop — the
	// bit-exact oracle every other mode is pinned against.
	EngineSequential = harness.EngineSequential
	// EngineSharded partitions a run into per-cluster shards executing in
	// parallel under a conservative lookahead clock (DESIGN.md §9). It
	// requires a clustered network preset and a protocol registered for
	// sharded execution (harness.RegisterShardedSystem), and does not
	// support scenarios — sharded systems drive their own per-shard
	// dynamics. Observers and the sampled time-series work: samples are
	// merged from per-shard counters at horizon barriers (DESIGN.md §12),
	// and an observed run stays bit-identical to an unobserved one.
	EngineSharded = harness.EngineSharded
)

// NetworkPreset selects an emulated environment, resolved through the open
// network registry (see RegisterNetwork).
type NetworkPreset string

// Presets matching the paper's experiment environments (§4.1, §4.4, §4.5,
// §4.7).
const (
	// NetworkModelNet: 6 Mbps access, 2 Mbps core, delay U[5,200) ms,
	// loss U[0,3%) — the main evaluation environment.
	NetworkModelNet NetworkPreset = "modelnet"
	// NetworkModelNetClean: same without random loss.
	NetworkModelNetClean NetworkPreset = "modelnet-clean"
	// NetworkConstrained: 800 Kbps access over a clean 10 Mbps core.
	NetworkConstrained NetworkPreset = "constrained"
	// NetworkHighBDP: 10 Mbps / 100 ms paths (large bandwidth-delay
	// product), no loss.
	NetworkHighBDP NetworkPreset = "highbdp"
	// NetworkPlanetLab: heterogeneous wide-area node mix.
	NetworkPlanetLab NetworkPreset = "planetlab"
	// NetworkClustered: co-located 25-node sites with fast clean links
	// inside a cluster and scarce lossy links between clusters — the
	// large-scale (1000-node) sweep environment.
	NetworkClustered NetworkPreset = "clustered"
	// NetworkClusteredCompact: the clustered environment in O(n) memory —
	// per-pair link parameters derived from a hash instead of dense
	// matrices, statistically identical to NetworkClustered. The only
	// preset that fits 50000 nodes; pair it with EngineSharded.
	NetworkClusteredCompact NetworkPreset = "clustered-compact"
	// NetworkTestbedUDP: no emulation at all — the protocols run over real
	// UDP sockets (loopback by default, a peer address table for
	// multi-host), with the engine's virtual clock driven by the wall
	// clock. Tune it with RunConfig.Testbed; incompatible with
	// EngineSharded, Scenario, and DynamicBandwidth. Observers work, with
	// Sample's Testbed* transport gauges populated (measured RTTs, unacked
	// bytes, retransmits). See DESIGN.md §10 and §12.
	NetworkTestbedUDP NetworkPreset = "testbed-udp"
)

// TestbedOptions tunes a NetworkTestbedUDP run; the zero value is the
// loopback default (127.0.0.1, real-time clock, 50 ms RTO, 8 retries, no
// injected loss).
type TestbedOptions struct {
	// ListenHost is the bind address for nodes without a Peers entry;
	// empty means 127.0.0.1 with auto-assigned ports.
	ListenHost string
	// Peers pins listen addresses ("host:port") per node id — the address
	// table of a multi-host deployment.
	Peers map[int]string
	// Rate is virtual seconds per wall second; 0 means 1 (real time).
	// Raising it accelerates the protocols' periodic timers against the
	// wall clock.
	Rate float64
	// RTO is the wall-clock retransmission timeout in seconds before the
	// first resend (each retry doubles it); 0 picks the default 50 ms.
	RTO float64
	// MaxRetries bounds resends per frame before the node pair is declared
	// dead; 0 picks the default 8.
	MaxRetries int
	// DropProb injects deterministic uniform packet loss on every
	// transmission attempt (a test hook; DropSeed seeds the injector).
	DropProb float64
	DropSeed int64
}

// TraceOptions enables structured event tracing for a run: typed spans are
// recorded for protocol decisions (sender trims and promotions, rechokes,
// reconcile rounds, stream rebuffers, testbed retransmits) into a bounded
// ring and returned as Result.Trace. Tracing only reads run state, so a
// traced run is bit-identical to an untraced one; on sharded runs each
// shard records privately and the spans merge deterministically after the
// run. Export the report with bulletctl trace (JSONL or Chrome
// trace_event). See DESIGN.md §12.
type TraceOptions struct {
	// Capacity bounds the span ring; 0 picks the default (16384). When the
	// ring is full the oldest span is evicted and TraceReport.Dropped
	// counts it — per-kind Counts still cover every recorded event.
	Capacity int
}

// StreamOptions makes a run a live stream: the source emits one block every
// BlockSize/BitrateBps seconds for Duration seconds instead of holding a
// complete file at t=0, and every receiver is tracked as a viewer playing
// the stream behind the live edge — Sample gains lag/rebuffer fields and
// Result.Stream reports per-viewer aggregates. FileBytes must be left zero
// (it is derived as BitrateBps × Duration rounded up to whole blocks);
// streaming requires a stream-capable protocol (ProtocolBulletPrime,
// ProtocolBullet, ProtocolStream) on the sequential emulated engine. See
// DESIGN.md §11.
type StreamOptions struct {
	// BitrateBps is the source emission rate in bytes per second.
	BitrateBps float64
	// Duration is how long the source emits, in virtual seconds.
	Duration float64
	// PlayoutDepth is the viewer buffer depth in seconds of content a
	// viewer must accumulate before (re)starting playback; 0 picks 4.
	PlayoutDepth float64
	// Warmup excludes the startup transient from steady-state goodput:
	// 0 picks min(Duration/4, 10), negative disables the warmup window.
	Warmup float64
	// Drain is how long the run may continue past the last block's emission
	// so trailing viewers catch up; 0 picks 15.
	Drain float64
}

// RequestStrategy re-exports the §3.3.2 request orderings.
type RequestStrategy = core.RequestStrategy

// The four request strategies of §3.3.2.
const (
	FirstEncountered = core.FirstEncountered
	RandomStrategy   = core.Random
	Rarest           = core.Rarest
	RarestRandom     = core.RarestRandom
)

// RunConfig describes one dissemination experiment.
type RunConfig struct {
	// Protocol defaults to ProtocolBulletPrime; any registered protocol
	// name is accepted.
	Protocol Protocol
	// Nodes is the overlay size including the source (minimum 8).
	Nodes int
	// FileBytes is the file size; BlockSize defaults to 16 KB.
	FileBytes float64
	BlockSize float64
	// Network defaults to NetworkModelNet; any registered network name is
	// accepted.
	Network NetworkPreset
	// DynamicBandwidth enables the §4.1 synthetic bandwidth-change
	// process (20 s period, cumulative halving).
	DynamicBandwidth bool
	// Scenario applies a declarative scenario (LoadScenario or the
	// scenario package's builders) on top of the preset network: link
	// dynamics, trace replay, outages, churn, flash-crowd waves. Composes
	// with DynamicBandwidth; same seed + same scenario ⇒ bit-identical
	// run.
	Scenario *Scenario
	// Seed makes the run reproducible; equal seeds share topology draws
	// across protocols.
	Seed int64
	// Deadline bounds simulated time (seconds); default 3600.
	Deadline float64
	// Parallel is the worker-pool size used when this config is the base
	// of a Sweep; 0 means one worker per CPU, negative is rejected. A
	// single run ignores it.
	Parallel int
	// SampleEvery is the session time-series cadence in virtual seconds
	// (default 1). An Experiment samples Result.Series at this rate — or
	// finer, when an observer subscribes with a smaller Every. Negative
	// disables Result.Series entirely (subscribed observers still stream
	// at their own cadence). The one-shot Run/Sweep wrappers do not
	// sample.
	SampleEvery float64
	// Engine selects the execution engine: EngineSequential (the zero
	// value) or EngineSharded. Sharded runs execute per-cluster shards in
	// parallel within one run; they require a clustered network preset and
	// a sharded-registered protocol (e.g. ProtocolScalefill), and are
	// incompatible with Scenario and DynamicBandwidth. Observers and the
	// sampled time-series work — samples merge per-shard counters at
	// horizon barriers, without perturbing the run.
	Engine EngineMode
	// Shards is the shard count for EngineSharded; 0 picks the default.
	// Results depend on the shard count — it is part of the experiment's
	// identity, never derived from the host's core count.
	Shards int
	// ShardWorkers caps the goroutines driving a sharded run: 1 runs all
	// shards cooperatively on one goroutine (the bit-exact oracle of the
	// parallel mode), 0 or any other value runs one goroutine per shard.
	// Results never depend on it.
	ShardWorkers int
	// Testbed tunes a NetworkTestbedUDP run (clock rate, retransmission,
	// loss injection, peer addresses); nil picks the loopback defaults.
	// Setting it with any other network preset is an error.
	Testbed *TestbedOptions
	// Archive, when set, persists every completed run — and every sweep
	// cell using this config as its base — into the experiment archive,
	// keyed by a deterministic hash of the normalized config, scenario
	// digest, seed, and code version (identical reruns dedupe; execution
	// knobs like Parallel are excluded from the hash). Cancelled runs are
	// never archived. See OpenArchive and DESIGN.md §7.
	Archive *Archive

	// Stream, when non-nil, makes the run a live stream (see StreamOptions):
	// paced source emission, per-viewer lag/rebuffer tracking, and the
	// Result.Stream report. FileBytes must then be zero — it is derived
	// from the stream geometry.
	Stream *StreamOptions

	// Trace, when non-nil, records structured protocol-decision spans into
	// Result.Trace (see TraceOptions). Works on every engine and network
	// backend; never perturbs the run.
	Trace *TraceOptions

	// Bullet'-specific knobs (ignored by other protocols).
	Strategy          RequestStrategy // default RarestRandom
	StaticPeers       int             // pin peer-set size; 0 = adaptive
	StaticOutstanding int             // pin outstanding window; 0 = adaptive
	Encoded           bool            // source fountain-coding mode
}

// normalized is the single place RunConfig defaults and seed-independent
// validation live: every entry point (New, Run, Sweep cells) goes through
// it, so a misconfiguration fails the same way everywhere instead of being
// silently ignored by some paths.
func (cfg RunConfig) normalized() (RunConfig, error) {
	if cfg.Nodes < 8 {
		return cfg, fmt.Errorf("bulletprime: need at least 8 nodes, got %d", cfg.Nodes)
	}
	if cfg.Stream != nil {
		// Streaming validation and defaults live before the FileBytes check:
		// a stream derives its content size from rate × duration.
		s := *cfg.Stream
		if s.BitrateBps <= 0 {
			return cfg, fmt.Errorf("bulletprime: Stream.BitrateBps must be positive, got %v", s.BitrateBps)
		}
		if s.Duration <= 0 {
			return cfg, fmt.Errorf("bulletprime: Stream.Duration must be positive, got %v", s.Duration)
		}
		if cfg.FileBytes != 0 {
			return cfg, fmt.Errorf("bulletprime: a streaming run derives FileBytes from BitrateBps × Duration; leave it zero")
		}
		if cfg.Engine == EngineSharded {
			return cfg, fmt.Errorf("bulletprime: streaming runs require the sequential engine (the lag tracker samples one clock)")
		}
		if cfg.Network == NetworkTestbedUDP || cfg.Testbed != nil {
			return cfg, fmt.Errorf("bulletprime: streaming runs do not support the testbed backend (lag tracking needs the deterministic emulated clock)")
		}
		if cfg.Encoded {
			return cfg, fmt.Errorf("bulletprime: Stream and Encoded both redefine the source emission; pick one")
		}
		if s.PlayoutDepth <= 0 {
			s.PlayoutDepth = harness.DefaultPlayoutDepth
		}
		switch {
		case s.Warmup == 0:
			s.Warmup = s.Duration / 4
			if s.Warmup > harness.DefaultWarmupCap {
				s.Warmup = harness.DefaultWarmupCap
			}
		case s.Warmup < 0:
			s.Warmup = 0
		}
		if s.Drain <= 0 {
			s.Drain = harness.DefaultDrain
		}
		cfg.Stream = &s
		if cfg.BlockSize <= 0 {
			cfg.BlockSize = 16 * 1024
		}
		blocks := math.Ceil(s.BitrateBps * s.Duration / cfg.BlockSize)
		if blocks < 1 {
			blocks = 1
		}
		cfg.FileBytes = blocks * cfg.BlockSize
	}
	if cfg.FileBytes <= 0 {
		return cfg, fmt.Errorf("bulletprime: FileBytes must be positive")
	}
	if cfg.Parallel < 0 {
		return cfg, fmt.Errorf("bulletprime: Parallel must be >= 0, got %d", cfg.Parallel)
	}
	if cfg.Protocol == "" {
		cfg.Protocol = ProtocolBulletPrime
	}
	if cfg.Network == "" {
		cfg.Network = NetworkModelNet
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 16 * 1024
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 3600
	}
	switch {
	case cfg.SampleEvery == 0:
		cfg.SampleEvery = 1
	case cfg.SampleEvery < 0:
		cfg.SampleEvery = -1 // canonical "series disabled"
	}
	if cfg.Trace != nil && cfg.Trace.Capacity < 0 {
		return cfg, fmt.Errorf("bulletprime: Trace.Capacity must be >= 0, got %d", cfg.Trace.Capacity)
	}
	// The testbed combination rules live here, next to the sharded ones, so
	// every entry point rejects a conflicted config with the same message.
	if cfg.Network == NetworkTestbedUDP {
		if cfg.Engine == EngineSharded {
			return cfg, fmt.Errorf("bulletprime: testbed runs do not support the sharded engine (one wall clock cannot drive parallel shard clocks)")
		}
		if cfg.Scenario != nil {
			return cfg, fmt.Errorf("bulletprime: testbed runs do not support scenarios (scenario programs drive the emulated network)")
		}
		if cfg.DynamicBandwidth {
			return cfg, fmt.Errorf("bulletprime: testbed runs do not support DynamicBandwidth (there is no emulated bandwidth to change)")
		}
		if cfg.Testbed == nil {
			cfg.Testbed = &TestbedOptions{}
		}
		if cfg.Testbed.Rate < 0 || cfg.Testbed.RTO < 0 || cfg.Testbed.MaxRetries < 0 {
			return cfg, fmt.Errorf("bulletprime: Testbed Rate/RTO/MaxRetries must be >= 0")
		}
		if cfg.Testbed.DropProb < 0 || cfg.Testbed.DropProb >= 1 {
			return cfg, fmt.Errorf("bulletprime: Testbed DropProb must be in [0, 1), got %v", cfg.Testbed.DropProb)
		}
	} else if cfg.Testbed != nil {
		return cfg, fmt.Errorf("bulletprime: Testbed options require Network: NetworkTestbedUDP, got %q", cfg.Network)
	}
	if cfg.Engine == EngineSharded {
		if cfg.Scenario != nil {
			return cfg, fmt.Errorf("bulletprime: sharded runs do not support scenarios; sharded systems drive their own per-shard dynamics")
		}
		if cfg.DynamicBandwidth {
			return cfg, fmt.Errorf("bulletprime: sharded runs do not support DynamicBandwidth")
		}
		if _, ok := harness.LookupShardedSystem(string(cfg.Protocol)); !ok {
			return cfg, fmt.Errorf("bulletprime: protocol %q is not registered for sharded execution (registered: %v)",
				cfg.Protocol, harness.ShardedSystemNames())
		}
	} else {
		if cfg.Shards != 0 || cfg.ShardWorkers != 0 {
			return cfg, fmt.Errorf("bulletprime: Shards/ShardWorkers are sharded-engine knobs; set Engine: EngineSharded")
		}
		sysName, ok := lookupProtocol(cfg.Protocol)
		if !ok {
			return cfg, fmt.Errorf("bulletprime: unknown protocol %q (registered: %v)",
				cfg.Protocol, Protocols())
		}
		if cfg.Stream != nil && !harness.StreamCapable(sysName) {
			return cfg, fmt.Errorf("bulletprime: protocol %q does not support live streaming (its source cannot pace emission)",
				cfg.Protocol)
		}
	}
	if _, ok := lookupNetwork(cfg.Network); !ok {
		return cfg, fmt.Errorf("bulletprime: unknown network preset %q (registered: %v)",
			cfg.Network, Networks())
	}
	return cfg, nil
}

// buildSpec lowers a normalized RunConfig into a harness spec; every
// session and sweep cell shares it, so a sweep's rigs are bit-identical to
// single runs.
func buildSpec(cfg RunConfig) (harness.SweepSpec, error) {
	var spec harness.SweepSpec
	systemName, _ := lookupProtocol(cfg.Protocol)
	if cfg.Engine == EngineSharded {
		// Sharded protocols resolve through the harness's sharded registry
		// under their façade name; normalized() already vetted membership.
		systemName = string(cfg.Protocol)
	}
	netBuild, _ := lookupNetwork(cfg.Network)
	topoFn := netBuild(cfg.Nodes)

	var dyn func(*harness.Rig)
	if cfg.DynamicBandwidth {
		dyn = harness.SyntheticBandwidthChanges(20)
	}

	var prog *scenario.Program
	if cfg.Scenario != nil {
		var err error
		prog, err = cfg.Scenario.Compile(cfg.Nodes)
		if err != nil {
			return spec, fmt.Errorf("bulletprime: %w", err)
		}
	}

	coreMut := func(c *core.Config) {
		c.Strategy = cfg.Strategy
		c.StaticPeers = cfg.StaticPeers
		c.StaticOutstanding = cfg.StaticOutstanding
		c.Encoded = cfg.Encoded
	}

	var tb *harness.TestbedSpec
	if cfg.Network == NetworkTestbedUDP {
		tb = &harness.TestbedSpec{
			ListenHost: cfg.Testbed.ListenHost,
			Peers:      cfg.Testbed.Peers,
			Rate:       cfg.Testbed.Rate,
			RTO:        cfg.Testbed.RTO,
			MaxRetries: cfg.Testbed.MaxRetries,
			DropProb:   cfg.Testbed.DropProb,
			DropSeed:   cfg.Testbed.DropSeed,
		}
	}

	var tracer *obs.Tracer
	if cfg.Trace != nil {
		tracer = obs.NewTracer(cfg.Trace.Capacity)
	}

	return harness.SweepSpec{
		Label:    fmt.Sprintf("%s/%s/seed%d", cfg.Protocol, cfg.Network, cfg.Seed),
		Seed:     cfg.Seed,
		TopoFn:   topoFn,
		Dynamics: dyn,
		System:   systemName,
		Workload: harness.Workload{FileBytes: cfg.FileBytes, BlockSize: cfg.BlockSize},
		CoreMut:  coreMut,
		Deadline: sim.Time(cfg.Deadline),
		Scenario: prog,
		Engine:   cfg.Engine,
		Shards:   cfg.Shards,
		Workers:  cfg.ShardWorkers,
		Testbed:  tb,
		Stream:   streamSpec(cfg.Stream),
		Tracer:   tracer,
	}, nil
}

// streamSpec lowers the façade's (already-normalized) stream options to the
// harness spec.
func streamSpec(s *StreamOptions) *harness.StreamSpec {
	if s == nil {
		return nil
	}
	return &harness.StreamSpec{
		BitrateBps:   s.BitrateBps,
		Duration:     s.Duration,
		PlayoutDepth: s.PlayoutDepth,
		Warmup:       s.Warmup,
		Drain:        s.Drain,
	}
}

// Annotation is a timestamped timeline marker: a scenario event firing, a
// flash-crowd wave starting, a node failing.
type Annotation struct {
	// At is the virtual time of the event in seconds.
	At float64
	// Text is the human-readable event description.
	Text string
}

// NodeProgress is one node's download state at a sample instant.
type NodeProgress struct {
	// Node is the topology address (the source holds everything and never
	// appears in CompletionTimes).
	Node int
	// Blocks is the number of distinct blocks the node holds.
	Blocks int
	// Bps is the node's delivered incoming byte rate over the last sample
	// window (wire bytes, control included).
	Bps float64
	// Done reports the node finished its download.
	Done bool
}

// Sample is one tick of an experiment's metric stream.
type Sample struct {
	// Time is the virtual clock in seconds.
	Time float64
	// Completed counts receivers that have finished; Receivers is the
	// total expected (session sources excluded).
	Completed int
	Receivers int
	// GoodputBps is the overlay's instantaneous aggregate delivered data
	// rate in bytes per second, measured over the last sample window.
	GoodputBps float64
	// ControlBytes and DataBytes are cumulative delivered wire bytes.
	ControlBytes float64
	DataBytes    float64
	// DuplicateBlocks counts blocks delivered to nodes that already held
	// them; DuplicateBytes ≈ DuplicateBlocks × BlockSize, and UsefulBytes
	// is DataBytes minus that waste.
	DuplicateBlocks int
	DuplicateBytes  float64
	UsefulBytes     float64
	// Live-streaming fields, populated only on streaming runs
	// (RunConfig.Stream): viewer lag behind the live edge (median and
	// worst, seconds), viewers currently rebuffering, cumulative rebuffer
	// events, and aggregate viewer goodput. See DESIGN.md §11.
	StreamLagP50     float64
	StreamLagMax     float64
	Rebuffering      int
	RebufferEvents   int
	StreamGoodputBps float64
	// Testbed transport gauges, populated only on NetworkTestbedUDP runs:
	// measured per-pair RTT (median and worst across active pairs, virtual
	// seconds), bytes sent but not yet acknowledged, and the cumulative
	// retransmission and injected-loss counters. See DESIGN.md §10, §12.
	TestbedRTTp50        float64
	TestbedRTTMax        float64
	TestbedUnackedBytes  float64
	TestbedRetransmits   int
	TestbedInjectedDrops int
	// Nodes holds per-node progress, only on streams subscribed with
	// ObserverConfig.PerNode (Result.Series omits it).
	Nodes []NodeProgress
	// Annotations lists the scenario events that fired since the previous
	// sample.
	Annotations []Annotation
}

// Result reports a run's outcome.
type Result struct {
	// CompletionTimes maps node id to download completion (seconds of
	// simulated time); session sources are not included.
	CompletionTimes map[int]float64
	// Finished reports whether every node completed before the deadline.
	Finished bool
	// Cancelled reports the run was stopped early through its context;
	// CompletionTimes and Series then hold the partial state observed up
	// to the stop.
	Cancelled bool
	// Elapsed is the virtual time at which the run ended.
	Elapsed float64
	// ControlOverhead is control bytes / total bytes delivered.
	ControlOverhead float64
	// Series is the sampled time-series of an observed session run, in
	// time order; nil for the one-shot Run/Sweep wrappers.
	Series []Sample
	// Annotations lists every scenario-event marker observed during a
	// session run, in time order.
	Annotations []Annotation
	// Stream is the live-streaming report of a streaming run
	// (RunConfig.Stream): per-viewer lag/jitter/rebuffer rows and their
	// aggregates. Nil for one-shot runs.
	Stream *StreamReport
	// Trace is the structured event trace of a traced run
	// (RunConfig.Trace): recorded spans in deterministic order plus
	// per-kind counts. Nil when tracing was not enabled.
	Trace *TraceReport

	cdf *trace.CDF
}

// TraceSpan is one recorded protocol-decision event: what happened (Kind),
// when (virtual seconds), where (Node, and the Peer it concerned — -1 when
// the event has no counterpart node), and a short free-form Note.
type TraceSpan struct {
	At   float64 `json:"at"`
	Kind string  `json:"kind"`
	Node int     `json:"node"`
	Peer int     `json:"peer"`
	Note string  `json:"note,omitempty"`
}

// TraceReport is a traced run's structured event record: the retained
// spans, ordered by (time, shard, record order); per-kind totals over
// every recorded event (eviction never loses a count); and the number of
// spans evicted from the bounded ring.
type TraceReport struct {
	Spans   []TraceSpan    `json:"spans"`
	Counts  map[string]int `json:"counts"`
	Dropped int            `json:"dropped,omitempty"`
}

// traceReport converts the tracer's final state into the public report.
func traceReport(t *obs.Tracer) *TraceReport {
	spans := t.Spans()
	rep := &TraceReport{
		Spans:   make([]TraceSpan, len(spans)),
		Counts:  make(map[string]int, len(t.Counts())),
		Dropped: int(t.Dropped()),
	}
	for i, s := range spans {
		rep.Spans[i] = TraceSpan{At: s.At, Kind: s.Kind, Node: s.Node, Peer: s.Peer, Note: s.Note}
	}
	for k, n := range t.Counts() {
		rep.Counts[k] = int(n)
	}
	return rep
}

// StreamReport re-exports the streaming tracker's end-of-run report:
// per-viewer rows (NodeReport) plus lag, jitter, startup, rebuffer, and
// goodput aggregates over the run.
type StreamReport = stream.Report

// dist returns the completion-time distribution. Library-returned Results
// carry it pre-built and pre-sorted (see toResult), so concurrent quantile
// reads are safe; a Result assembled by hand gets it lazily from
// CompletionTimes on the first quantile call, which must not race.
func (r *Result) dist() *trace.CDF {
	if r.cdf == nil || r.cdf.N() != len(r.CompletionTimes) {
		r.cdf = newCDF(r.CompletionTimes)
	}
	return r.cdf
}

// newCDF builds the sorted completion-time distribution. Sorting eagerly
// (Quantile sorts lazily in place) keeps later concurrent reads race-free.
func newCDF(times map[int]float64) *trace.CDF {
	c := &trace.CDF{}
	for _, t := range times {
		c.Add(t)
	}
	if c.N() > 0 {
		c.Quantile(0)
	}
	return c
}

// Quantile returns the q-th completion-time quantile (0 <= q <= 1) by
// nearest-rank, backed by trace.CDF — the same rule every figure and sweep
// summary uses. An empty result reports 0.
func (r *Result) Quantile(q float64) float64 {
	if len(r.CompletionTimes) == 0 {
		return 0
	}
	return r.dist().Quantile(q)
}

// Median returns the median completion time.
func (r *Result) Median() float64 { return r.Quantile(0.5) }

// Worst returns the slowest node's completion time.
func (r *Result) Worst() float64 { return r.Quantile(1.0) }

// Best returns the fastest node's completion time.
func (r *Result) Best() float64 { return r.Quantile(0.0) }

// toResult converts a harness result to the public form.
func toResult(res *harness.RunResult) *Result {
	out := &Result{
		CompletionTimes: make(map[int]float64, len(res.PerNode)),
		Finished:        res.Finished,
		Cancelled:       res.Stopped,
		Elapsed:         float64(res.EndedAt),
		ControlOverhead: res.ControlOverhead(),
	}
	for id, t := range res.PerNode {
		out.CompletionTimes[int(id)] = float64(t)
	}
	out.Stream = res.Stream
	// Pre-build the distribution while single-threaded (its own copy, not
	// the harness CDF, whose in-place sort callers must not share).
	out.cdf = newCDF(out.CompletionTimes)
	return out
}

// Run executes the experiment to completion and returns per-node results:
// the one-shot compatibility wrapper over an unobserved session. Use New
// for live observation, cancellation, and the sampled time-series.
func Run(cfg RunConfig) (*Result, error) {
	exp, err := New(cfg)
	if err != nil {
		return nil, err
	}
	exp.noSample = true
	return exp.Run(nil)
}

// RenderFigure regenerates one of the paper's evaluation figures (4-15) at
// the given scale (1.0 = paper scale) and returns gnuplot-style text.
func RenderFigure(figure int, scale float64, seed int64) (string, error) {
	return harness.Render(figure, harness.Scale{Nodes: scale, File: scale}, seed)
}
