package bulletprime

import (
	"encoding/json"
	"fmt"

	"bulletprime/internal/lab"
)

// Archive is a persistent, content-addressed experiment archive: a
// directory where completed runs are stored as manifest + JSONL records
// keyed by a deterministic hash of (normalized config, scenario digest,
// seed, code version), so identical reruns dedupe and changed configs
// never collide. Set RunConfig.Archive to record every completed run and
// sweep cell automatically, or call Experiment.Record explicitly; query
// and diff the results with Archive.Select, CompareArchived, and
// bulletctl's ls/show/compare/report/gate subcommands. See DESIGN.md §7.
type Archive = lab.Archive

// ArchivedRun is one run loaded back from an Archive: manifest metadata
// plus the completion times, time-series samples, and annotations.
type ArchivedRun = lab.Run

// ArchiveFilter selects archived runs by id prefix, protocol, network,
// seed set, scenario, or code version; the zero value matches everything.
type ArchiveFilter = lab.Filter

// Comparison is an A/B diff of two archived run sets: pooled per-quantile
// deltas, seed-paired medians, and a paper-style markdown Report.
type Comparison = lab.Comparison

// OpenArchive creates (if needed) and opens an experiment archive rooted
// at dir.
func OpenArchive(dir string) (*Archive, error) { return lab.Open(dir) }

// CompareArchived diffs two archived run sets — protocol vs protocol,
// commit vs commit — under the given labels.
func CompareArchived(labelA string, a []*ArchivedRun, labelB string, b []*ArchivedRun) *Comparison {
	return lab.Compare(labelA, a, labelB, b)
}

// ArchiveReport renders a run set as a markdown report: one pooled
// quantile-summary row per protocol/network/scenario group plus their
// download-time CDF plots.
func ArchiveReport(runs []*ArchivedRun) string { return lab.Report(runs) }

// configFingerprint is the canonical form of a normalized RunConfig that
// the archive hashes into a run's identity. Execution-only knobs
// (Parallel, the Archive pointer itself) are excluded: they cannot change
// a run's results. SampleEvery holds the run's *effective* recorded
// series cadence — -1 when the run persisted no time-series (the one-shot
// Run/Sweep wrappers, or a disabled series), the possibly observer-refined
// cadence otherwise — so two records whose payloads differ never share an
// id, and identical reruns through the same path always dedupe. Field
// order is fixed — changing it would re-key every archived run.
type configFingerprint struct {
	Protocol          Protocol        `json:"protocol"`
	Nodes             int             `json:"nodes"`
	FileBytes         float64         `json:"file_bytes"`
	BlockSize         float64         `json:"block_size"`
	Network           NetworkPreset   `json:"network"`
	DynamicBandwidth  bool            `json:"dynamic_bandwidth,omitempty"`
	Scenario          string          `json:"scenario,omitempty"` // digest
	ScenarioName      string          `json:"scenario_name,omitempty"`
	Seed              int64           `json:"seed"`
	Deadline          float64         `json:"deadline"`
	SampleEvery       float64         `json:"sample_every"`
	Strategy          RequestStrategy `json:"strategy"`
	StaticPeers       int             `json:"static_peers,omitempty"`
	StaticOutstanding int             `json:"static_outstanding,omitempty"`
	Encoded           bool            `json:"encoded,omitempty"`
	// Engine and Shards shape results (per-shard RNG streams), so they are
	// part of the identity; ShardWorkers is an execution knob and is not.
	// omitempty keeps every pre-sharding sequential record's id stable.
	Engine EngineMode `json:"engine,omitempty"`
	Shards int        `json:"shards,omitempty"`
	// Testbed captures the result-shaping knobs of a real-socket run; nil
	// for emulated runs, keeping every pre-testbed record's id stable.
	// Address knobs (ListenHost, Peers) are execution details and excluded.
	Testbed *testbedFingerprint `json:"testbed,omitempty"`
	// Stream captures a streaming run's normalized pacing knobs; nil for
	// one-shot runs, keeping every pre-streaming record's id stable — and
	// making a streamed run's id always differ from the one-shot run of
	// the same derived FileBytes.
	Stream *streamFingerprint `json:"stream,omitempty"`
}

// testbedFingerprint is the identity-bearing slice of TestbedOptions.
type testbedFingerprint struct {
	Rate       float64 `json:"rate,omitempty"`
	RTO        float64 `json:"rto,omitempty"`
	MaxRetries int     `json:"max_retries,omitempty"`
	DropProb   float64 `json:"drop_prob,omitempty"`
	DropSeed   int64   `json:"drop_seed,omitempty"`
}

// streamFingerprint is the identity-bearing slice of StreamOptions
// (post-normalization, so defaults hash the same as their explicit values).
type streamFingerprint struct {
	BitrateBps   float64 `json:"bitrate_bps,omitempty"`
	Duration     float64 `json:"duration,omitempty"`
	PlayoutDepth float64 `json:"playout_depth,omitempty"`
	Warmup       float64 `json:"warmup,omitempty"`
	Drain        float64 `json:"drain,omitempty"`
}

// fingerprint renders a normalized config's canonical JSON plus the
// scenario digest and name; seriesEvery is the effective recorded series
// cadence (see configFingerprint.SampleEvery).
func fingerprint(cfg RunConfig, seriesEvery float64) (configJSON []byte, scenarioDigest, scenarioName string, err error) {
	if cfg.Scenario != nil {
		blob, err := json.Marshal(cfg.Scenario)
		if err != nil {
			return nil, "", "", fmt.Errorf("bulletprime: hashing scenario: %w", err)
		}
		scenarioDigest = lab.Digest(blob)
		scenarioName = cfg.Scenario.Name
	}
	fp := configFingerprint{
		Protocol:          cfg.Protocol,
		Nodes:             cfg.Nodes,
		FileBytes:         cfg.FileBytes,
		BlockSize:         cfg.BlockSize,
		Network:           cfg.Network,
		DynamicBandwidth:  cfg.DynamicBandwidth,
		Scenario:          scenarioDigest,
		ScenarioName:      scenarioName,
		Seed:              cfg.Seed,
		Deadline:          cfg.Deadline,
		SampleEvery:       seriesEvery,
		Strategy:          cfg.Strategy,
		StaticPeers:       cfg.StaticPeers,
		StaticOutstanding: cfg.StaticOutstanding,
		Encoded:           cfg.Encoded,
		Engine:            cfg.Engine,
		Shards:            cfg.Shards,
	}
	if cfg.Network == NetworkTestbedUDP && cfg.Testbed != nil {
		fp.Testbed = &testbedFingerprint{
			Rate:       cfg.Testbed.Rate,
			RTO:        cfg.Testbed.RTO,
			MaxRetries: cfg.Testbed.MaxRetries,
			DropProb:   cfg.Testbed.DropProb,
			DropSeed:   cfg.Testbed.DropSeed,
		}
	}
	if cfg.Stream != nil {
		fp.Stream = &streamFingerprint{
			BitrateBps:   cfg.Stream.BitrateBps,
			Duration:     cfg.Stream.Duration,
			PlayoutDepth: cfg.Stream.PlayoutDepth,
			Warmup:       cfg.Stream.Warmup,
			Drain:        cfg.Stream.Drain,
		}
	}
	configJSON, err = json.Marshal(fp)
	if err != nil {
		return nil, "", "", fmt.Errorf("bulletprime: hashing config: %w", err)
	}
	return configJSON, scenarioDigest, scenarioName, nil
}

// recordRun archives one completed run under its content address.
func recordRun(a *Archive, cfg RunConfig, res *Result, seriesEvery float64) (string, error) {
	configJSON, digest, scenarioName, err := fingerprint(cfg, seriesEvery)
	if err != nil {
		return "", err
	}
	run := &lab.Run{
		Meta: lab.Meta{
			Config:          configJSON,
			Scenario:        digest,
			Seed:            cfg.Seed,
			Protocol:        string(cfg.Protocol),
			Network:         string(cfg.Network),
			Nodes:           cfg.Nodes,
			FileBytes:       cfg.FileBytes,
			ScenarioName:    scenarioName,
			Finished:        res.Finished,
			Elapsed:         res.Elapsed,
			ControlOverhead: res.ControlOverhead,
		},
		CompletionTimes: res.CompletionTimes,
	}
	if len(res.Series) > 0 {
		run.Series = make([]lab.Sample, len(res.Series))
		for i, s := range res.Series {
			run.Series[i] = lab.Sample{
				Time:             s.Time,
				Completed:        s.Completed,
				Receivers:        s.Receivers,
				GoodputBps:       s.GoodputBps,
				ControlBytes:     s.ControlBytes,
				DataBytes:        s.DataBytes,
				DuplicateBlocks:  s.DuplicateBlocks,
				DuplicateBytes:   s.DuplicateBytes,
				UsefulBytes:      s.UsefulBytes,
				StreamLagP50:     s.StreamLagP50,
				StreamLagMax:     s.StreamLagMax,
				Rebuffering:      s.Rebuffering,
				RebufferEvents:   s.RebufferEvents,
				StreamGoodputBps: s.StreamGoodputBps,

				TestbedRTTp50:        s.TestbedRTTp50,
				TestbedRTTMax:        s.TestbedRTTMax,
				TestbedUnackedBytes:  s.TestbedUnackedBytes,
				TestbedRetransmits:   s.TestbedRetransmits,
				TestbedInjectedDrops: s.TestbedInjectedDrops,
			}
		}
	}
	if len(res.Annotations) > 0 {
		run.Annotations = make([]lab.Annotation, len(res.Annotations))
		for i, an := range res.Annotations {
			run.Annotations[i] = lab.Annotation{At: an.At, Text: an.Text}
		}
	}
	id, _, err := a.Put(run)
	return id, err
}

// Record archives the session's completed run into a and returns the run
// id. It is an error to Record before the run ends or to archive a
// cancelled (partial) run; re-recording an identical run dedupes to the
// same id. Sessions whose RunConfig.Archive is set record automatically.
func (e *Experiment) Record(a *Archive) (string, error) {
	if a == nil {
		return "", fmt.Errorf("bulletprime: Record into a nil archive")
	}
	select {
	case <-e.done:
	default:
		return "", fmt.Errorf("bulletprime: Record before the run completed")
	}
	if e.res.Cancelled {
		return "", fmt.Errorf("bulletprime: refusing to archive a cancelled (partial) run")
	}
	return recordRun(a, e.cfg, e.res, e.seriesEvery)
}

// RunID returns the archive id the session's automatic record landed
// under: empty until the run ends, and empty for runs without
// RunConfig.Archive or cancelled runs (which are never archived).
func (e *Experiment) RunID() string {
	select {
	case <-e.done:
		return e.runID
	default:
		return ""
	}
}
