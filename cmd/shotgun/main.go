// Command shotgun computes and applies rsync-style batch delta bundles
// between directory trees — the data-preparation half of the paper's
// Shotgun tool (§4.8). The dissemination half is the Bullet' overlay; this
// CLI produces the bundle a shotgund deployment would multicast, and can
// apply a received bundle locally.
//
// Usage:
//
//	shotgun diff  -old v1/ -new v2/ -out update.sgb   # build bundle
//	shotgun apply -old v1/ -bundle update.sgb          # replay onto v1/
//	shotgun stat  -bundle update.sgb                   # inspect
package main

import (
	"encoding/gob"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"bulletprime/internal/rsyncx"
	"bulletprime/internal/shotgun"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "diff":
		cmdDiff(os.Args[2:])
	case "apply":
		cmdApply(os.Args[2:])
	case "stat":
		cmdStat(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  shotgun diff  -old DIR -new DIR -out FILE [-block N] [-version V]
  shotgun apply -old DIR -bundle FILE
  shotgun stat  -bundle FILE`)
	os.Exit(2)
}

func cmdDiff(args []string) {
	fl := flag.NewFlagSet("diff", flag.ExitOnError)
	oldDir := fl.String("old", "", "current software image directory")
	newDir := fl.String("new", "", "updated software image directory")
	out := fl.String("out", "update.sgb", "output bundle path")
	block := fl.Int("block", rsyncx.DefaultBlockSize, "delta block size")
	version := fl.Int("version", 1, "bundle version number")
	fl.Parse(args)
	if *oldDir == "" || *newDir == "" {
		usage()
	}

	oldImg := mustReadTree(*oldDir)
	newImg := mustReadTree(*newDir)
	b := shotgun.BuildBundle(*version, oldImg, newImg, *block)

	f, err := os.Create(*out)
	check(err)
	defer f.Close()
	check(gob.NewEncoder(f).Encode(wireBundle(b)))

	var oldTotal, newTotal int
	for _, d := range oldImg {
		oldTotal += len(d)
	}
	for _, d := range newImg {
		newTotal += len(d)
	}
	fmt.Printf("bundle %s: version %d, %d changed files, %d deletions\n",
		*out, b.Version, len(b.Files), len(b.Deleted))
	fmt.Printf("image %d -> %d bytes; delta payload ~%d bytes (%.1f%% of new image)\n",
		oldTotal, newTotal, b.WireSize(), 100*float64(b.WireSize())/float64(maxInt(newTotal, 1)))
}

func cmdApply(args []string) {
	fl := flag.NewFlagSet("apply", flag.ExitOnError)
	oldDir := fl.String("old", "", "directory to update in place")
	bundle := fl.String("bundle", "", "bundle file to apply")
	fl.Parse(args)
	if *oldDir == "" || *bundle == "" {
		usage()
	}

	b := mustReadBundle(*bundle)
	oldImg := mustReadTree(*oldDir)
	newImg, err := shotgun.ApplyBundle(oldImg, b)
	check(err)

	// Write changed/new files, remove deleted ones.
	written := 0
	for p, data := range newImg {
		full := filepath.Join(*oldDir, filepath.FromSlash(p))
		check(os.MkdirAll(filepath.Dir(full), 0o755))
		check(os.WriteFile(full, data, 0o644))
		written++
	}
	for _, p := range b.Deleted {
		os.Remove(filepath.Join(*oldDir, filepath.FromSlash(p)))
	}
	fmt.Printf("applied bundle v%d: %d files written, %d removed\n", b.Version, written, len(b.Deleted))
}

func cmdStat(args []string) {
	fl := flag.NewFlagSet("stat", flag.ExitOnError)
	bundle := fl.String("bundle", "", "bundle file to inspect")
	fl.Parse(args)
	if *bundle == "" {
		usage()
	}
	b := mustReadBundle(*bundle)
	fmt.Printf("version %d, wire size ~%d bytes\n", b.Version, b.WireSize())
	for _, f := range b.Files {
		copies, lits := 0, 0
		for _, op := range f.Delta.Ops {
			if op.Kind == rsyncx.OpCopy {
				copies++
			} else {
				lits += len(op.Data)
			}
		}
		tag := "delta "
		if f.Create {
			tag = "create"
		}
		fmt.Printf("  %s %-40s %6d copied blocks, %8d literal bytes\n", tag, f.Path, copies, lits)
	}
	for _, p := range b.Deleted {
		fmt.Printf("  delete %s\n", p)
	}
}

// gobBundle mirrors shotgun.Bundle with exported-only fields for gob.
type gobBundle struct {
	Version int
	Files   []shotgun.FileDelta
	Deleted []string
}

func wireBundle(b shotgun.Bundle) gobBundle {
	return gobBundle{Version: b.Version, Files: b.Files, Deleted: b.Deleted}
}

func mustReadBundle(path string) shotgun.Bundle {
	f, err := os.Open(path)
	check(err)
	defer f.Close()
	var gb gobBundle
	check(gob.NewDecoder(f).Decode(&gb))
	return shotgun.Bundle{Version: gb.Version, Files: gb.Files, Deleted: gb.Deleted}
}

// mustReadTree loads a directory tree as path -> content with /-separated
// relative paths.
func mustReadTree(dir string) map[string][]byte {
	out := make(map[string][]byte)
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out[strings.ReplaceAll(rel, string(filepath.Separator), "/")] = data
		return nil
	})
	check(err)
	return out
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "shotgun:", err)
		os.Exit(1)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
