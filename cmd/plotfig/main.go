// Command plotfig renders a figure data file produced by bulletctl as an
// ASCII chart — a gnuplot stand-in for inspecting reproduced figures in a
// terminal.
//
//	go run ./cmd/bulletctl -figure 4 > f4.dat
//	go run ./cmd/plotfig f4.dat
//	go run ./cmd/plotfig -width 100 -height 30 results/figure05.dat
package main

import (
	"flag"
	"fmt"
	"os"

	"bulletprime/internal/trace"
)

func main() {
	width := flag.Int("width", 78, "plot width in characters")
	height := flag.Int("height", 22, "plot height in rows")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: plotfig [-width N] [-height N] FILE.dat")
		os.Exit(2)
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "plotfig:", err)
		os.Exit(1)
	}
	fig, err := trace.ParseFigure(string(raw))
	if err != nil {
		fmt.Fprintln(os.Stderr, "plotfig:", err)
		os.Exit(1)
	}
	fmt.Print(fig.AsciiPlot(*width, *height))
}
