package main

// The observability subcommands: metrics re-exports an archived run as
// Prometheus text-format or JSON, trace runs one traced experiment and
// exports its structured event spans as Chrome trace_event JSON or JSONL,
// and `run -metrics-addr` serves a live run's latest sample over HTTP for
// scraping. All rendering goes through internal/obs and internal/lab, so
// archived, live, and traced views of the same run agree. See DESIGN.md §12.

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"bulletprime"
	"bulletprime/internal/lab"
	"bulletprime/internal/obs"
)

// labSample converts a façade sample to the archive layer's form — the
// shared input of every metrics rendering path (live scrape and archived
// re-export).
func labSample(s bulletprime.Sample) lab.Sample {
	return lab.Sample{
		Time:             s.Time,
		Completed:        s.Completed,
		Receivers:        s.Receivers,
		GoodputBps:       s.GoodputBps,
		ControlBytes:     s.ControlBytes,
		DataBytes:        s.DataBytes,
		DuplicateBlocks:  s.DuplicateBlocks,
		DuplicateBytes:   s.DuplicateBytes,
		UsefulBytes:      s.UsefulBytes,
		StreamLagP50:     s.StreamLagP50,
		StreamLagMax:     s.StreamLagMax,
		Rebuffering:      s.Rebuffering,
		RebufferEvents:   s.RebufferEvents,
		StreamGoodputBps: s.StreamGoodputBps,

		TestbedRTTp50:        s.TestbedRTTp50,
		TestbedRTTMax:        s.TestbedRTTMax,
		TestbedUnackedBytes:  s.TestbedUnackedBytes,
		TestbedRetransmits:   s.TestbedRetransmits,
		TestbedInjectedDrops: s.TestbedInjectedDrops,
	}
}

// runMetrics implements the metrics subcommand: render one archived run as
// Prometheus text exposition format (the default) or JSON. Equal runs
// render byte-equal output, so the exposition is diffable.
func runMetrics(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	archDir := fs.String("archive", "", "experiment archive directory")
	format := fs.String("format", "prom", "output format: prom (Prometheus text exposition 0.0.4) or json")
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: bulletctl metrics -archive DIR [-format prom|json] RUN_ID")
		return 2
	}
	if *format != "prom" && *format != "json" {
		fmt.Fprintf(stderr, "bulletctl metrics: unknown format %q (prom or json)\n", *format)
		return 2
	}
	arch, code := openArchiveArg(*archDir, stderr)
	if code >= 0 {
		return code
	}
	runs, code := selectRuns(arch, "id="+fs.Arg(0), stderr)
	if code >= 0 {
		return code
	}
	if len(runs) == 0 {
		fmt.Fprintf(stderr, "bulletctl: no run matches id %q\n", fs.Arg(0))
		return 1
	}
	if len(runs) > 1 {
		fmt.Fprintf(stderr, "bulletctl: id prefix %q is ambiguous (%d runs)\n", fs.Arg(0), len(runs))
		return 1
	}
	reg := lab.Metrics(runs[0])
	var err error
	if *format == "json" {
		err = reg.RenderJSON(stdout)
	} else {
		err = reg.RenderPrometheus(stdout)
	}
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return 1
	}
	return 0
}

// runTrace implements the trace subcommand: run one experiment with
// structured event tracing enabled and export the recorded spans. The
// export goes to -o (or stdout), the per-kind span counts to stderr, so
// `bulletctl trace ... > run.trace` always yields a loadable file.
func runTrace(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	var (
		nodes    = fs.Int("nodes", 30, "overlay size including the source")
		fileMB   = fs.Float64("filemb", 10, "file size in MB")
		protocol = fs.String("protocol", "bulletprime", "protocol (any registered)")
		network  = fs.String("network", "modelnet", "network preset (any registered)")
		seed     = fs.Int64("seed", 1, "master random seed")
		deadline = fs.Float64("deadline", 3600, "virtual-time deadline in seconds")
		engine   = fs.String("engine", "sequential", "execution engine: sequential or sharded")
		shards   = fs.Int("shards", 0, "shard count for -engine sharded (0 = default)")
		capac    = fs.Int("capacity", 0, "span ring bound (0 = default 16384; oldest spans evicted beyond it)")
		format   = fs.String("format", "chrome", "export format: chrome (trace_event JSON for chrome://tracing) or jsonl")
		outFile  = fs.String("o", "", "write the trace to this file instead of stdout")
	)
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "bulletctl trace: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if *format != "chrome" && *format != "jsonl" {
		fmt.Fprintf(stderr, "bulletctl trace: unknown format %q (chrome or jsonl)\n", *format)
		return 2
	}
	mode, ok := parseEngine(*engine, stderr)
	if !ok {
		return 2
	}

	start := time.Now()
	exp, err := bulletprime.New(bulletprime.RunConfig{
		Protocol:  bulletprime.Protocol(*protocol),
		Nodes:     *nodes,
		FileBytes: *fileMB * 1e6,
		Network:   bulletprime.NetworkPreset(*network),
		Seed:      *seed,
		Deadline:  *deadline,
		Engine:    mode,
		Shards:    *shards,
		Trace:     &bulletprime.TraceOptions{Capacity: *capac},
		// Tracing needs no time-series.
		SampleEvery: -1,
	})
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return 1
	}
	ctx, stop := interruptContext()
	defer stop()
	res, err := exp.Run(ctx)
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return 1
	}
	rep := res.Trace
	if rep == nil {
		fmt.Fprintln(stderr, "bulletctl: traced run returned no trace report")
		return 1
	}

	// Report order is the deterministic merge order; carry it as Seq.
	spans := make([]obs.Span, len(rep.Spans))
	for i, s := range rep.Spans {
		spans[i] = obs.Span{At: s.At, Kind: s.Kind, Node: s.Node, Peer: s.Peer, Note: s.Note, Seq: uint64(i)}
	}
	out := stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintln(stderr, "bulletctl:", err)
			return 1
		}
		defer f.Close()
		out = f
	}
	if *format == "jsonl" {
		err = obs.WriteJSONL(out, spans)
	} else {
		err = obs.WriteChromeTrace(out, spans)
	}
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return 1
	}
	if *outFile != "" {
		fmt.Fprintf(stderr, "wrote %s (%d spans)\n", *outFile, len(spans))
	}
	counts := make(map[string]uint64, len(rep.Counts))
	for k, n := range rep.Counts {
		counts[k] = uint64(n)
	}
	obs.FormatCounts(stderr, counts)
	if rep.Dropped > 0 {
		fmt.Fprintf(stderr, "%d span(s) evicted from the ring (raise -capacity to keep more)\n", rep.Dropped)
	}
	if res.Cancelled {
		fmt.Fprintln(stderr, "bulletctl: run cancelled; trace above is partial")
		return 1
	}
	fmt.Fprintf(stderr, "[trace, %.1fs wall]\n", time.Since(start).Seconds())
	return 0
}

// metricsServer is the live scrape endpoint `run -metrics-addr` starts: an
// observer drains into an atomic latest-sample slot, and each HTTP request
// renders that slot on demand — scraping never touches, let alone stalls,
// the simulation.
type metricsServer struct {
	srv     *http.Server
	ln      net.Listener
	drained chan struct{}
}

// serveMetrics subscribes a live observer on exp and serves its most recent
// sample at /metrics (Prometheus text format) and /metrics.json. Must be
// called before the run starts; addr may use port 0 to pick a free port —
// the bound address is reported on stderr.
func serveMetrics(addr string, exp *bulletprime.Experiment, labels map[string]string, every float64, stderr io.Writer) (*metricsServer, error) {
	o, err := exp.Subscribe(bulletprime.ObserverConfig{Every: every})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	var latest atomic.Pointer[bulletprime.Sample]
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for s := range o.Samples() {
			s := s
			latest.Store(&s)
		}
	}()
	registry := func() *obs.Registry {
		r := &obs.Registry{}
		if s := latest.Load(); s != nil {
			lab.SampleMetrics(r, labels, labSample(*s))
		}
		return r
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		registry().RenderPrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		registry().RenderJSON(w)
	})
	m := &metricsServer{srv: &http.Server{Handler: mux}, ln: ln, drained: drained}
	go m.srv.Serve(ln)
	fmt.Fprintf(stderr, "serving live metrics on http://%s/metrics\n", ln.Addr())
	return m, nil
}

// addr returns the server's bound address (useful with ":0").
func (m *metricsServer) addr() string { return m.ln.Addr().String() }

// close stops the HTTP server and waits for the observer drain to finish;
// call it after the run ends.
func (m *metricsServer) close() {
	<-m.drained
	m.srv.Close()
}
