package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bulletprime/internal/lab"
)

var update = flag.Bool("update", false, "rewrite golden files")

// ctl invokes the dispatcher the way main does and captures the streams.
func ctl(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = dispatch(args, &out, &errb)
	return code, out.String(), errb.String()
}

// buildTestArchive records a small two-protocol × two-seed sweep, the
// fixture every archive subcommand test reads. The simulation is
// deterministic, so the archive contents are identical on every run.
func buildTestArchive(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "bench")
	code, _, stderr := ctl(t, "sweep",
		"-nodes", "10", "-filemb", "1", "-seeds", "2",
		"-protocols", "bulletprime,bittorrent", "-parallel", "2",
		"-archive", dir)
	if code != 0 {
		t.Fatalf("sweep -archive exited %d: %s", code, stderr)
	}
	return dir
}

// TestSubcommandExitCodes is the CLI's usage contract, as a table over
// every subcommand: unknown subcommands and bad flags exit 2 with a
// message, never 0 and never a panic.
func TestSubcommandExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"unknown subcommand", []string{"frobnicate"}, 2},
		{"unknown subcommand with flags", []string{"explode", "-now"}, 2},
		{"figure mode bad flag", []string{"-bogus"}, 2},
		{"figure mode stray argument", []string{"-list", "extra"}, 2},
		{"figure list ok", []string{"-list"}, 0},

		{"run bad flag", []string{"run", "-bogus"}, 2},
		{"run stray argument", []string{"run", "extra"}, 2},
		{"run help", []string{"run", "-h"}, 0},
		{"sweep bad flag", []string{"sweep", "-bogus"}, 2},
		{"sweep stray argument", []string{"sweep", "extra"}, 2},
		{"scenario no verb", []string{"scenario"}, 2},
		{"scenario bad verb", []string{"scenario", "fold"}, 2},
		{"scenario lint bad flag", []string{"scenario", "lint", "-bogus"}, 2},

		{"ls bad flag", []string{"ls", "-bogus"}, 2},
		{"ls no archive", []string{"ls"}, 2},
		{"ls stray argument", []string{"ls", "-archive", "x", "extra"}, 2},
		{"show bad flag", []string{"show", "-bogus"}, 2},
		{"show no id", []string{"show", "-archive", "x"}, 2},
		{"compare bad flag", []string{"compare", "-bogus"}, 2},
		{"compare no selectors", []string{"compare", "-archive", "x"}, 2},
		{"report bad flag", []string{"report", "-bogus"}, 2},
		{"report no archive", []string{"report"}, 2},
		{"gate bad flag", []string{"gate", "-bogus"}, 2},
		{"gate no baseline", []string{"gate", "-archive", "x"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := ctl(t, tc.args...)
			if code != tc.want {
				t.Fatalf("%v exited %d (stderr %q), want %d", tc.args, code, stderr, tc.want)
			}
			if tc.want == 2 && stderr == "" {
				t.Fatalf("%v: usage error must print a message", tc.args)
			}
		})
	}

	// Every registered subcommand must reject an unknown flag with 2, so a
	// future subcommand cannot regress to ExitOnError/panic behavior.
	for name := range subcommands {
		args := []string{name, "-definitely-not-a-flag"}
		if name == "scenario" {
			args = []string{name, "lint", "-definitely-not-a-flag"}
		}
		if code, _, _ := ctl(t, args...); code != 2 {
			t.Errorf("subcommand %q with bad flag exited %d, want 2", name, code)
		}
	}
}

// TestArchiveCLIWorkflow drives ls and show over a recorded sweep.
func TestArchiveCLIWorkflow(t *testing.T) {
	dir := buildTestArchive(t)

	code, out, stderr := ctl(t, "ls", "-archive", dir)
	if code != 0 {
		t.Fatalf("ls exited %d: %s", code, stderr)
	}
	if !strings.Contains(out, "4 run(s)") {
		t.Fatalf("ls should list 4 runs:\n%s", out)
	}
	if !strings.Contains(out, "bulletprime") || !strings.Contains(out, "bittorrent") {
		t.Fatalf("ls missing protocols:\n%s", out)
	}

	// Dedupe through the CLI: re-running the same sweep adds nothing.
	if code, _, stderr := ctl(t, "sweep",
		"-nodes", "10", "-filemb", "1", "-seeds", "2",
		"-protocols", "bulletprime,bittorrent", "-parallel", "2",
		"-archive", dir); code != 0 {
		t.Fatalf("re-sweep exited %d: %s", code, stderr)
	}
	_, out, _ = ctl(t, "ls", "-archive", dir)
	if !strings.Contains(out, "4 run(s)") {
		t.Fatalf("identical re-sweep must dedupe to 4 runs:\n%s", out)
	}

	// Filtered ls.
	_, out, _ = ctl(t, "ls", "-archive", dir, "-filter", "protocol=bittorrent,seed=1")
	if !strings.Contains(out, "1 run(s)") {
		t.Fatalf("filtered ls should match 1 run:\n%s", out)
	}

	// show by unique id prefix.
	arch, err := lab.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	metas, err := arch.List()
	if err != nil {
		t.Fatal(err)
	}
	code, out, stderr = ctl(t, "show", "-archive", dir, metas[0].ID[:10])
	if code != 0 {
		t.Fatalf("show exited %d: %s", code, stderr)
	}
	for _, want := range []string{"protocol:", "completion-time quantiles", "config:", metas[0].ID} {
		if !strings.Contains(out, want) {
			t.Fatalf("show output missing %q:\n%s", want, out)
		}
	}
	if code, _, _ := ctl(t, "show", "-archive", dir, "ffffffffff"); code != 1 {
		t.Fatal("show with an unmatched id should exit 1")
	}

	// A read-side subcommand must not create a mistyped archive directory.
	absent := filepath.Join(t.TempDir(), "no-such-archive")
	if code, _, _ := ctl(t, "ls", "-archive", absent); code != 1 {
		t.Fatal("ls over a nonexistent archive should exit 1")
	}
	if _, err := os.Stat(absent); !os.IsNotExist(err) {
		t.Fatal("ls must not create the archive directory as a side effect")
	}
}

// TestCompareGolden pins `bulletctl compare` output for a two-protocol
// sweep byte-for-byte: the deterministic simulation plus the
// deterministic archive make the whole report reproducible. Regenerate
// with `go test ./cmd/bulletctl -run CompareGolden -update`.
func TestCompareGolden(t *testing.T) {
	dir := buildTestArchive(t)
	code, out, stderr := ctl(t, "compare", "-archive", dir,
		"-a", "protocol=bulletprime", "-b", "protocol=bittorrent",
		"-label-a", "bulletprime", "-label-b", "bittorrent")
	if code != 0 {
		t.Fatalf("compare exited %d: %s", code, stderr)
	}
	golden := filepath.Join("testdata", "compare_golden.md")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if out != string(want) {
		t.Fatalf("compare output drifted from golden (regenerate with -update if intended)\n--- got ---\n%s\n--- want ---\n%s", out, want)
	}

	// An empty side is a runtime error, not an empty report.
	if code, _, _ := ctl(t, "compare", "-archive", dir,
		"-a", "protocol=bulletprime", "-b", "protocol=absent"); code != 1 {
		t.Fatal("compare with an empty side should exit 1")
	}
}

// TestReportCLI exercises report to stdout and to -o FILE.
func TestReportCLI(t *testing.T) {
	dir := buildTestArchive(t)
	code, out, stderr := ctl(t, "report", "-archive", dir)
	if code != 0 {
		t.Fatalf("report exited %d: %s", code, stderr)
	}
	for _, want := range []string{
		"# Experiment archive report",
		"| bulletprime/modelnet | 2 | 2 |",
		"| bittorrent/modelnet | 2 | 2 |",
		"download time CDF",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	outFile := filepath.Join(t.TempDir(), "REPORT.md")
	if code, _, stderr := ctl(t, "report", "-archive", dir, "-o", outFile); code != 0 {
		t.Fatalf("report -o exited %d: %s", code, stderr)
	}
	written, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if string(written) != out {
		t.Fatal("report -o content differs from stdout content")
	}
}

// TestGateCLI is the regression-gate acceptance test: gate passes against
// a baseline captured from the real current build and fails non-zero when
// a regression is injected into that baseline.
func TestGateCLI(t *testing.T) {
	dir := buildTestArchive(t)
	baseline := filepath.Join(t.TempDir(), "baseline.json")

	// Capture the current build as the baseline.
	code, out, stderr := ctl(t, "gate", "-archive", dir, "-baseline", baseline, "-write", "-tol", "0.15")
	if code != 0 {
		t.Fatalf("gate -write exited %d: %s", code, stderr)
	}
	if !strings.Contains(out, "2 group(s)") {
		t.Fatalf("gate -write should capture both protocol groups:\n%s", out)
	}

	// The real current build passes its own baseline.
	code, out, stderr = ctl(t, "gate", "-archive", dir, "-baseline", baseline)
	if code != 0 {
		t.Fatalf("gate against own baseline exited %d:\n%s%s", code, out, stderr)
	}
	if !strings.Contains(out, "gate ok") {
		t.Fatalf("passing gate output:\n%s", out)
	}

	// Injected regression: shrink the committed values so the current
	// build exceeds tolerance; the gate must exit non-zero.
	var base lab.Baseline
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	for k, v := range base.Entries {
		base.Entries[k] = v * 0.5
	}
	if err := base.Save(baseline); err != nil {
		t.Fatal(err)
	}
	code, out, _ = ctl(t, "gate", "-archive", dir, "-baseline", baseline)
	if code != 1 {
		t.Fatalf("gate with injected regression exited %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "gate FAILED") {
		t.Fatalf("failing gate output:\n%s", out)
	}

	// A corrupt baseline file is a runtime error.
	if err := os.WriteFile(baseline, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := ctl(t, "gate", "-archive", dir, "-baseline", baseline); code != 1 {
		t.Fatal("gate with a corrupt baseline should exit 1")
	}
	// An absent baseline file is a runtime error too.
	if code, _, _ := ctl(t, "gate", "-archive", dir, "-baseline",
		filepath.Join(t.TempDir(), "absent.json")); code != 1 {
		t.Fatal("gate with a missing baseline should exit 1")
	}
}
