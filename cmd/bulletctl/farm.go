package main

// The farm subcommand: distributed coordinator/worker sweeps over a
// shared experiment archive. `farm coordinate` expands a sweep spec into
// cells and serves them over the lab claim protocol; any number of
// `farm work` processes (same machine or not) claim cells, execute them
// with the ordinary session runner, and record into the shared archive.
// Content-hash dedupe makes every retry idempotent, so killing a worker
// mid-cell and re-running the farm converges on exactly one archive
// record per cell. `farm status` reports progress from a live
// coordinator or offline from the archive alone; `farm resume` is
// coordinate by another name — resuming IS coordinating over an archive
// that already holds some of the cells. See DESIGN.md §13.

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"bulletprime"
	"bulletprime/internal/lab"
)

func runFarm(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "usage: bulletctl farm <coordinate|work|status|resume> [flags]")
		return 2
	}
	switch args[0] {
	case "coordinate", "resume":
		return farmCoordinate(args[0], args[1:], stdout, stderr)
	case "work":
		return farmWork(args[1:], stdout, stderr)
	case "status":
		return farmStatus(args[1:], stdout, stderr)
	}
	fmt.Fprintf(stderr, "bulletctl farm: unknown verb %q\n", args[0])
	fmt.Fprintln(stderr, "usage: bulletctl farm <coordinate|work|status|resume> [flags]")
	return 2
}

// farmSpecFlags registers the sweep-geometry flags and returns a closure
// assembling the FarmSpec after parsing.
func farmSpecFlags(fs *flag.FlagSet) func() lab.FarmSpec {
	var (
		nodes     = fs.Int("nodes", 8, "overlay size including the source")
		fileMB    = fs.Float64("filemb", 1, "file size in MB")
		protocols = fs.String("protocols", "bulletprime", "comma-separated protocols (any registered)")
		networks  = fs.String("networks", "modelnet", "comma-separated network presets (any registered)")
		seeds     = fs.Int("seeds", 2, "number of base seeds (1..n)")
		reps      = fs.Int("reps", 1, "repetitions per cell with derived seeds")
		deadline  = fs.Float64("deadline", 3600, "virtual-time deadline in seconds for every cell")
	)
	return func() lab.FarmSpec {
		spec := lab.FarmSpec{
			Nodes:     *nodes,
			FileMB:    *fileMB,
			Protocols: splitList(*protocols),
			Networks:  splitList(*networks),
			Reps:      *reps,
			Deadline:  *deadline,
		}
		for s := int64(1); s <= int64(*seeds); s++ {
			spec.Seeds = append(spec.Seeds, s)
		}
		return spec
	}
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// farmCoordinate serves the claim protocol until every cell is settled.
// It first resumes from the archive — cells whose runs are already
// recorded are never served — which makes re-running the coordinator
// over a partially-filled archive the entire resume story.
func farmCoordinate(verb string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("farm "+verb, flag.ContinueOnError)
	buildSpec := farmSpecFlags(fs)
	var (
		addr    = fs.String("addr", "127.0.0.1:0", "address to serve the claim protocol on")
		archDir = fs.String("archive", "", "shared experiment archive directory (required)")
		ttl     = fs.Float64("ttl", 15, "lease TTL in seconds; a dead worker's cell is reissued after this")
		wall    = fs.Float64("wall", 0, "wall-clock bound in seconds; on expiry the farm stops and exits 1 (0 = none)")
		linger  = fs.Float64("linger", 1.5, "seconds to keep serving after completion so workers see the done verdict")
	)
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "bulletctl farm %s: unexpected argument %q\n", verb, fs.Arg(0))
		return 2
	}
	if *archDir == "" {
		fmt.Fprintf(stderr, "usage: bulletctl farm %s -archive DIR [flags]\n", verb)
		return 2
	}
	arch, err := bulletprime.OpenArchive(*archDir)
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return 1
	}
	spec := buildSpec()
	farm, err := lab.NewFarm(spec, time.Duration(*ttl*float64(time.Second)))
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return 1
	}
	resumed, err := farm.ResumeFromArchive(arch)
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return 1
	}
	total := farm.Status().Total
	fmt.Fprintf(stderr, "[farm] %d cell(s), %d already archived\n", total, resumed)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return 1
	}
	// The resolved address line is machine-readable on purpose: with
	// -addr :0 it is how scripts learn the port.
	fmt.Fprintf(stderr, "[farm] coordinating on http://%s\n", ln.Addr())
	srv := &http.Server{Handler: &lab.FarmServer{Farm: farm}}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ctx, stop := interruptContext()
	defer stop()
	start := time.Now()
	var deadline <-chan time.Time
	if *wall > 0 {
		t := time.NewTimer(time.Duration(*wall * float64(time.Second)))
		defer t.Stop()
		deadline = t.C
	}
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	last := lab.FarmStatus{}
	code := 0
poll:
	for {
		select {
		case <-ctx.Done():
			fmt.Fprintln(stderr, "[farm] interrupted")
			code = 1
			break poll
		case <-deadline:
			fmt.Fprintf(stderr, "bulletctl: farm exceeded -wall %vs\n", *wall)
			code = 1
			break poll
		case err := <-serveErr:
			fmt.Fprintln(stderr, "bulletctl:", err)
			code = 1
			break poll
		case <-tick.C:
			st := farm.Status()
			if st.Done != last.Done || st.Failed != last.Failed || st.Reissues != last.Reissues {
				fmt.Fprintf(stderr, "[farm] %d/%d done, %d leased, %d pending, %d failed (%d reissues)\n",
					st.Done, st.Total, st.Leased, st.Pending, st.Failed, st.Reissues)
			}
			last = st
			if st.Complete() {
				break poll
			}
		}
	}
	// Let workers whose claim is in flight observe the done verdict
	// before the listener goes away.
	if code == 0 && *linger > 0 {
		time.Sleep(time.Duration(*linger * float64(time.Second)))
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = srv.Shutdown(shCtx)

	st := farm.Status()
	renderFarmStatus(stdout, st)
	ids := farm.RunIDs()
	distinct := 0
	prev := ""
	for _, id := range ids {
		if id != prev {
			distinct++
			prev = id
		}
	}
	fmt.Fprintf(stdout, "distinct archived runs: %d\n", distinct)
	fmt.Fprintf(stderr, "[farm %s, %.1fs wall]\n", verb, time.Since(start).Seconds())
	if code != 0 {
		return code
	}
	if st.Failed > 0 {
		return 1
	}
	return 0
}

// farmWork claims cells from a coordinator and executes them until the
// farm is done. Every run records into the shared archive before the
// lease settles, so the worker can die at any instant without losing or
// duplicating work.
func farmWork(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("farm work", flag.ContinueOnError)
	var (
		coord   = fs.String("coordinator", "", "coordinator URL, e.g. http://127.0.0.1:8844 (required)")
		worker  = fs.String("worker", "", "worker name in claims and status (default: host-pid)")
		archDir = fs.String("archive", "", "shared experiment archive directory (required)")
		version = fs.String("version", "", "code version stamped onto archived runs")
	)
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "bulletctl farm work: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if *coord == "" || *archDir == "" {
		fmt.Fprintln(stderr, "usage: bulletctl farm work -coordinator URL -archive DIR [flags]")
		return 2
	}
	name := *worker
	if name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	arch, ok := openArchiveFlag(*archDir, *version, stderr)
	if !ok {
		return 1
	}
	cl := &lab.FarmClient{Base: *coord, Worker: name}
	spec, err := cl.Spec()
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return 1
	}

	ctx, stop := interruptContext()
	defer stop()
	done := 0
	consecErrs := 0
	for {
		if ctx.Err() != nil {
			fmt.Fprintf(stderr, "[%s] interrupted after %d cell(s)\n", name, done)
			return 1
		}
		cell, lease, ttl, verdict, err := cl.Claim()
		if err != nil {
			// A transient coordinator hiccup (or its post-completion
			// shutdown racing our claim) is not worth dying over
			// immediately; a coordinator that stays gone is.
			consecErrs++
			if consecErrs > 40 {
				fmt.Fprintln(stderr, "bulletctl:", err)
				return 1
			}
			time.Sleep(250 * time.Millisecond)
			continue
		}
		consecErrs = 0
		switch verdict {
		case lab.ClaimDone:
			fmt.Fprintf(stderr, "[%s] farm complete; ran %d cell(s)\n", name, done)
			return 0
		case lab.ClaimWait:
			time.Sleep(300 * time.Millisecond)
			continue
		}
		fmt.Fprintf(stderr, "[%s] cell %d (%s/%s/%d rep %d) claimed\n",
			name, cell.Index, cell.Protocol, cell.Network, cell.Seed, cell.Rep)
		if runFarmCell(ctx, cl, arch, spec, cell, lease, ttl, name, stderr) {
			done++
		}
	}
}

// runFarmCell executes one leased cell: session run, archive record,
// lease settle, with a background renewer keeping the lease alive for
// the duration. Returns true when the cell completed under this lease.
func runFarmCell(ctx context.Context, cl *lab.FarmClient, arch *bulletprime.Archive,
	spec lab.FarmSpec, cell lab.Cell, lease string, ttl time.Duration, name string, stderr io.Writer) bool {
	exp, err := bulletprime.New(bulletprime.RunConfig{
		Protocol:    bulletprime.Protocol(cell.Protocol),
		Nodes:       spec.Nodes,
		FileBytes:   spec.FileMB * 1e6,
		Network:     bulletprime.NetworkPreset(cell.Network),
		Seed:        cell.Seed,
		Deadline:    spec.Deadline,
		SampleEvery: -1,
		Archive:     arch,
	})
	if err != nil {
		// The runner rejects this configuration deterministically; every
		// reissue would too, so settle it as failed rather than letting
		// it bounce between workers until someone notices.
		fmt.Fprintf(stderr, "[%s] cell %d (%s/%s/%d) rejected: %v\n",
			name, cell.Index, cell.Protocol, cell.Network, cell.Seed, err)
		_, _ = cl.Fail(lease, err.Error())
		return false
	}
	// The renewer keeps the lease alive while the run executes; losing
	// the lease (coordinator restarted, TTL missed under load) cancels
	// the run — the cell belongs to someone else now.
	runCtx, cancel := context.WithCancel(ctx)
	renewDone := make(chan struct{})
	go func() {
		defer close(renewDone)
		period := ttl / 3
		if period < 50*time.Millisecond {
			period = 50 * time.Millisecond
		}
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-t.C:
				if ok, err := cl.Renew(lease); err == nil && !ok {
					cancel()
					return
				}
			}
		}
	}()
	res, err := exp.Run(runCtx)
	cancel()
	<-renewDone
	if err != nil && res == nil {
		fmt.Fprintf(stderr, "[%s] cell %d failed to run: %v\n", name, cell.Index, err)
		_, _ = cl.Fail(lease, err.Error())
		return false
	}
	if res.Cancelled {
		// Lease lost or SIGINT: no settle. If the lease expired the cell
		// is already reissued; the partial run was never archived.
		fmt.Fprintf(stderr, "[%s] cell %d abandoned (lease lost or interrupted)\n", name, cell.Index)
		return false
	}
	if err != nil {
		// The run completed but archiving it failed; leave the lease to
		// expire so another worker (or a retry here) lands the record.
		fmt.Fprintf(stderr, "[%s] cell %d: %v\n", name, cell.Index, err)
		return false
	}
	ok, err := cl.Complete(lease, exp.RunID())
	if err != nil {
		fmt.Fprintf(stderr, "[%s] cell %d: completing lease: %v\n", name, cell.Index, err)
		return false
	}
	if !ok {
		// Settled late: the lease expired and the cell was reissued. Our
		// archive record stands — the reissued run dedupes against it —
		// so nothing is lost and nothing is duplicated.
		fmt.Fprintf(stderr, "[%s] cell %d archived as %s but the lease had expired\n",
			name, cell.Index, exp.RunID())
		return false
	}
	fmt.Fprintf(stderr, "[%s] cell %d (%s/%s/%d rep %d) done: %s, median %.1fs\n",
		name, cell.Index, cell.Protocol, cell.Network, cell.Seed, cell.Rep, exp.RunID(), res.Median())
	return true
}

// farmStatus reports progress: live from a coordinator's /status when
// -coordinator is given, otherwise offline from the archive alone by
// expanding the same spec and counting which cells it already holds.
func farmStatus(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("farm status", flag.ContinueOnError)
	buildSpec := farmSpecFlags(fs)
	var (
		coord   = fs.String("coordinator", "", "coordinator URL to query (live status)")
		archDir = fs.String("archive", "", "archive directory for offline status (with the spec flags)")
	)
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "bulletctl farm status: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if (*coord == "") == (*archDir == "") {
		fmt.Fprintln(stderr, "usage: bulletctl farm status (-coordinator URL | -archive DIR [spec flags])")
		return 2
	}
	if *coord != "" {
		cl := &lab.FarmClient{Base: *coord}
		st, err := cl.Status()
		if err != nil {
			fmt.Fprintln(stderr, "bulletctl:", err)
			return 1
		}
		renderFarmStatus(stdout, st)
		return 0
	}
	arch, code := openArchiveArg(*archDir, stderr)
	if code >= 0 {
		return code
	}
	farm, err := lab.NewFarm(buildSpec(), 0)
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return 1
	}
	if _, err := farm.ResumeFromArchive(arch); err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return 1
	}
	renderFarmStatus(stdout, farm.Status())
	return 0
}

// renderFarmStatus prints one status snapshot in a stable order.
func renderFarmStatus(w io.Writer, st lab.FarmStatus) {
	fmt.Fprintf(w, "cells %d: %d done, %d pending, %d leased, %d failed (%d reissues)\n",
		st.Total, st.Done, st.Pending, st.Leased, st.Failed, st.Reissues)
	names := make([]string, 0, len(st.Workers))
	for n := range st.Workers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "  worker %-20s %d cell(s)\n", n, st.Workers[n])
	}
	for _, f := range st.Failures {
		fmt.Fprintf(w, "  failed: %s\n", f)
	}
}
