package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lint runs the scenario-lint verb against args and returns its exit code
// plus captured output.
func lint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = runScenario(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestScenarioLintExitCodes(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	doc := `{"name": "lint-me", "events": [
		{"kind": "set_bw", "at": 5, "links": {"frac": 0.5, "dir": "in"}, "bw_kbps": 500}
	]}`
	if err := os.WriteFile(good, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name": "x", "events": [{"kind": "warp"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	// 0: valid scenario prints the timeline and ok.
	code, stdout, _ := lint(t, "lint", "-nodes", "20", good)
	if code != 0 {
		t.Fatalf("valid scenario: exit %d, want 0", code)
	}
	if !strings.Contains(stdout, "lint-me") || !strings.Contains(stdout, "ok: ") {
		t.Fatalf("valid scenario output missing timeline/ok: %q", stdout)
	}

	// 1: missing file.
	if code, _, stderr := lint(t, "lint", filepath.Join(dir, "absent.json")); code != 1 || stderr == "" {
		t.Fatalf("missing file: exit %d (stderr %q), want 1 with message", code, stderr)
	}

	// 1: file that parses but fails validation (unknown event kind).
	if code, _, _ := lint(t, "lint", bad); code != 1 {
		t.Fatalf("invalid scenario: exit %d, want 1", code)
	}

	// 0: explicit help is not a usage error.
	if code, _, stderr := lint(t, "lint", "-h"); code != 0 || !strings.Contains(stderr, "-nodes") {
		t.Fatalf("-h: exit %d (stderr %q), want 0 with usage text", code, stderr)
	}

	// 2: usage errors — wrong verb, no file, extra args.
	if code, _, _ := lint(t, "fold", good); code != 2 {
		t.Fatalf("bad verb: exit %d, want 2", code)
	}
	if code, _, _ := lint(t, "lint"); code != 2 {
		t.Fatalf("no file: exit %d, want 2", code)
	}
	if code, _, _ := lint(t, "lint", good, bad); code != 2 {
		t.Fatalf("two files: exit %d, want 2", code)
	}
	if code, _, _ := lint(t); code != 2 {
		t.Fatalf("no verb: exit %d, want 2", code)
	}
}

// runRun invokes the run verb in-process and returns its exit code plus
// captured output.
func runRun(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = runSingle(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunStreamFlagExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
		msg  string // required stderr substring for usage errors
	}{
		{"bitrate without stream", []string{"-bitrate", "2"}, 2, "require -stream"},
		{"duration without stream", []string{"-duration", "30"}, 2, "require -stream"},
		{"playout without stream", []string{"-playout", "4"}, 2, "require -stream"},
		{"filemb with stream", []string{"-stream", "-filemb", "5"}, 2, "drop -filemb"},
		{"stream on sharded engine", []string{"-stream", "-engine", "sharded",
			"-network", "clustered", "-protocol", "scalefill"}, 1, "sequential engine"},
		{"stream on non-streaming protocol", []string{"-stream", "-nodes", "8",
			"-protocol", "bittorrent"}, 1, "does not support live streaming"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runRun(t, tc.args...)
			if code != tc.want {
				t.Fatalf("exit %d (stderr %q), want %d", code, stderr, tc.want)
			}
			if !strings.Contains(stderr, tc.msg) {
				t.Fatalf("stderr %q missing %q", stderr, tc.msg)
			}
		})
	}
}

// TestRunStreamSmall drives a real (tiny) streaming run through the CLI and
// checks the stream-metrics report shape.
func TestRunStreamSmall(t *testing.T) {
	code, stdout, stderr := runRun(t,
		"-stream", "-bitrate", "0.25", "-duration", "10",
		"-nodes", "8", "-network", "modelnet-clean", "-protocol", "stream", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	for _, col := range []string{"lag_p50_s", "rebuffers", "goodput_mbps", "viewers live"} {
		if !strings.Contains(stdout, col) {
			t.Fatalf("stream report missing %q:\n%s", col, stdout)
		}
	}
}
