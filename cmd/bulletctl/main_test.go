package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lint runs the scenario-lint verb against args and returns its exit code
// plus captured output.
func lint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = runScenario(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestScenarioLintExitCodes(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	doc := `{"name": "lint-me", "events": [
		{"kind": "set_bw", "at": 5, "links": {"frac": 0.5, "dir": "in"}, "bw_kbps": 500}
	]}`
	if err := os.WriteFile(good, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name": "x", "events": [{"kind": "warp"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	// 0: valid scenario prints the timeline and ok.
	code, stdout, _ := lint(t, "lint", "-nodes", "20", good)
	if code != 0 {
		t.Fatalf("valid scenario: exit %d, want 0", code)
	}
	if !strings.Contains(stdout, "lint-me") || !strings.Contains(stdout, "ok: ") {
		t.Fatalf("valid scenario output missing timeline/ok: %q", stdout)
	}

	// 1: missing file.
	if code, _, stderr := lint(t, "lint", filepath.Join(dir, "absent.json")); code != 1 || stderr == "" {
		t.Fatalf("missing file: exit %d (stderr %q), want 1 with message", code, stderr)
	}

	// 1: file that parses but fails validation (unknown event kind).
	if code, _, _ := lint(t, "lint", bad); code != 1 {
		t.Fatalf("invalid scenario: exit %d, want 1", code)
	}

	// 0: explicit help is not a usage error.
	if code, _, stderr := lint(t, "lint", "-h"); code != 0 || !strings.Contains(stderr, "-nodes") {
		t.Fatalf("-h: exit %d (stderr %q), want 0 with usage text", code, stderr)
	}

	// 2: usage errors — wrong verb, no file, extra args.
	if code, _, _ := lint(t, "fold", good); code != 2 {
		t.Fatalf("bad verb: exit %d, want 2", code)
	}
	if code, _, _ := lint(t, "lint"); code != 2 {
		t.Fatalf("no file: exit %d, want 2", code)
	}
	if code, _, _ := lint(t, "lint", good, bad); code != 2 {
		t.Fatalf("two files: exit %d, want 2", code)
	}
	if code, _, _ := lint(t); code != 2 {
		t.Fatalf("no verb: exit %d, want 2", code)
	}
}
