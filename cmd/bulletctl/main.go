// Command bulletctl regenerates any figure of the paper's evaluation
// section from the reproduced systems.
//
// Usage:
//
//	bulletctl -figure 4            # quick, scaled-down run
//	bulletctl -figure 5 -scale 1   # full paper scale (100 nodes, 100 MB)
//	bulletctl -list
//
// Output is gnuplot-style text: a summary table (best/median/p90/worst
// download times per series) followed by the raw CDF points.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"bulletprime/internal/harness"
)

func main() {
	var (
		figure    = flag.Int("figure", 4, "paper figure to regenerate (4..15)")
		scale     = flag.Float64("scale", 0.25, "experiment scale: 1 = paper scale (100 nodes, 100 MB)")
		fileScale = flag.Float64("filescale", 0, "file-size scale override (defaults to -scale)")
		seed      = flag.Int64("seed", 42, "master random seed (topology + protocol)")
		list      = flag.Bool("list", false, "list available figures and exit")
		summary   = flag.Bool("summary", false, "print only the summary table, not raw CDF points")
		all       = flag.String("all", "", "regenerate every figure into this directory (figureNN.dat)")
	)
	flag.Parse()

	if *list {
		var nums []int
		for n := range harness.AllFigures {
			nums = append(nums, n)
		}
		sort.Ints(nums)
		for _, n := range nums {
			fmt.Printf("  figure %2d: %s\n", n, harness.AllFigures[n])
		}
		return
	}

	sc := harness.Scale{Nodes: *scale, File: *scale}
	if *fileScale > 0 {
		sc.File = *fileScale
	}

	if *all != "" {
		if err := os.MkdirAll(*all, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "bulletctl:", err)
			os.Exit(1)
		}
		var nums []int
		for n := range harness.AllFigures {
			nums = append(nums, n)
		}
		sort.Ints(nums)
		for _, n := range nums {
			t0 := time.Now()
			out, err := harness.Render(n, sc, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bulletctl:", err)
				os.Exit(1)
			}
			path := fmt.Sprintf("%s/figure%02d.dat", *all, n)
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "bulletctl:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%.1fs)\n", path, time.Since(t0).Seconds())
		}
		return
	}

	start := time.Now()
	out, err := harness.Render(*figure, sc, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bulletctl:", err)
		os.Exit(1)
	}
	if *summary {
		// The summary table ends at the first blank-line + '#' block.
		for _, line := range splitKeep(out) {
			if len(line) > 0 && line[0] == '#' {
				break
			}
			fmt.Println(line)
		}
	} else {
		fmt.Print(out)
	}
	fmt.Fprintf(os.Stderr, "[figure %d, scale %.2f, %.1fs wall]\n", *figure, *scale, time.Since(start).Seconds())
}

func splitKeep(s string) []string {
	var out []string
	cur := make([]byte, 0, 128)
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, string(cur))
			cur = cur[:0]
			continue
		}
		cur = append(cur, s[i])
	}
	return append(out, string(cur))
}
