// Command bulletctl regenerates any figure of the paper's evaluation
// section from the reproduced systems, runs single experiments and parallel
// sweeps on the session API (with optional live progress), lints
// declarative scenario files, and manages the persistent experiment
// archive: listing and inspecting recorded runs, producing A/B comparison
// reports, and gating metrics against a committed baseline.
//
// Usage:
//
//	bulletctl -figure 4            # quick, scaled-down run
//	bulletctl -figure 5 -scale 1   # full paper scale (100 nodes, 100 MB)
//	bulletctl -list
//	bulletctl run -nodes 30 -filemb 10 -scenario rush.json -seed 1 -progress
//	bulletctl run -nodes 8 -filemb 0.25 -network testbed-udp -rate 25 -timeout 60
//	bulletctl crosscheck -nodes 8 -filemb 0.25 -rate 25 -archive bench/
//	bulletctl sweep -nodes 100 -seeds 4 -protocols bulletprime,bittorrent -parallel 8
//	bulletctl sweep -seeds 4 -protocols bulletprime,bittorrent -archive bench/
//	bulletctl scenario lint -nodes 30 rush.json
//	bulletctl ls -archive bench/
//	bulletctl show -archive bench/ 1a2b3c4d
//	bulletctl compare -archive bench/ -a protocol=bulletprime -b protocol=bittorrent
//	bulletctl report -archive bench/ -o REPORT.md
//	bulletctl sweep -seeds 4 -reps 5 -protocols bulletprime -archive bench/
//	bulletctl gate -archive bench/ -baseline BENCH_BASELINE.json
//	bulletctl gate -archive bench/ -baseline BENCH_BASELINE.json -write -stats -alpha 0.05
//	bulletctl farm coordinate -archive bench/ -addr 127.0.0.1:8844 -seeds 2 -reps 3
//	bulletctl farm work -coordinator http://127.0.0.1:8844 -archive bench/
//	bulletctl farm status -coordinator http://127.0.0.1:8844
//	bulletctl farm resume -archive bench/ -addr 127.0.0.1:8844 -seeds 2 -reps 3
//	go test -run '^$' -bench ... -benchmem ./... | bulletctl perfgate -baseline BENCH_PERF.json
//	bulletctl run -nodes 100 -engine sharded -network clustered -protocol scalefill -metrics-addr :9100
//	bulletctl metrics -archive bench/ -format prom 1a2b3c4d
//	bulletctl trace -nodes 30 -filemb 5 -format chrome -o run.trace.json
//
// Figure output is gnuplot-style text: a summary table (best/median/p90/
// worst download times per series) followed by the raw CDF points. Sweep
// output is one summary row per rig plus a pooled row per protocol×network.
// With -progress, run streams live samples (completions, goodput, scenario
// events) to stderr and sweep reports each cell as it finishes. With
// -archive, run and sweep record every completed cell into the archive,
// deduped by content hash. Every subcommand exits 0 on success, 1 on a
// runtime/validation failure (including a failed gate), and 2 on usage
// errors — unknown subcommands and bad flags never exit 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"bulletprime"
	"bulletprime/internal/harness"
)

func main() {
	os.Exit(dispatch(os.Args[1:], os.Stdout, os.Stderr))
}

// subcommands maps every verb to its implementation; dispatch and the
// usage text share it.
var subcommands = map[string]func(args []string, stdout, stderr io.Writer) int{
	"run":        runSingle,
	"crosscheck": runCrosscheck,
	"sweep":      runSweep,
	"scenario":   runScenario,
	"ls":         runLs,
	"show":       runShow,
	"compare":    runCompare,
	"farm":       runFarm,
	"report":     runReport,
	"gate":       runGate,
	"perfgate":   runPerfGate,
	"metrics":    runMetrics,
	"trace":      runTrace,
}

func usage(w io.Writer) {
	names := make([]string, 0, len(subcommands))
	for n := range subcommands {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "usage: bulletctl [-figure N | -list | -all DIR] [flags]\n")
	fmt.Fprintf(w, "       bulletctl <%s> [flags]\n", strings.Join(names, "|"))
	fmt.Fprintln(w, "run 'bulletctl <subcommand> -h' for subcommand flags")
}

// dispatch routes to a subcommand or the default figure mode and returns
// the process exit code: 0 ok, 1 runtime failure, 2 usage error. An
// unknown subcommand is a usage error, never a silent figure run.
func dispatch(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, ok := subcommands[args[0]]
		if !ok {
			fmt.Fprintf(stderr, "bulletctl: unknown subcommand %q\n", args[0])
			usage(stderr)
			return 2
		}
		return cmd(args[1:], stdout, stderr)
	}
	return runFigure(args, stdout, stderr)
}

// parseFlags runs a ContinueOnError flag set and maps the outcome to an
// exit code: -1 parsed fine, 0 explicit -h, 2 bad flags.
func parseFlags(fs *flag.FlagSet, args []string, stderr io.Writer) int {
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	return -1
}

// runFigure is the default mode: regenerate one paper figure (or all).
func runFigure(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bulletctl", flag.ContinueOnError)
	var (
		figure    = fs.Int("figure", 4, "paper figure to regenerate (4..15)")
		scale     = fs.Float64("scale", 0.25, "experiment scale: 1 = paper scale (100 nodes, 100 MB)")
		fileScale = fs.Float64("filescale", 0, "file-size scale override (defaults to -scale)")
		seed      = fs.Int64("seed", 42, "master random seed (topology + protocol)")
		list      = fs.Bool("list", false, "list available figures and exit")
		summary   = fs.Bool("summary", false, "print only the summary table, not raw CDF points")
		all       = fs.String("all", "", "regenerate every figure into this directory (figureNN.dat)")
	)
	fs.Usage = func() { usage(stderr); fs.PrintDefaults() }
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "bulletctl: unexpected argument %q\n", fs.Arg(0))
		usage(stderr)
		return 2
	}

	if *list {
		var nums []int
		for n := range harness.AllFigures {
			nums = append(nums, n)
		}
		sort.Ints(nums)
		for _, n := range nums {
			fmt.Fprintf(stdout, "  figure %2d: %s\n", n, harness.AllFigures[n])
		}
		return 0
	}

	sc := harness.Scale{Nodes: *scale, File: *scale}
	if *fileScale > 0 {
		sc.File = *fileScale
	}

	if *all != "" {
		if err := os.MkdirAll(*all, 0o755); err != nil {
			fmt.Fprintln(stderr, "bulletctl:", err)
			return 1
		}
		var nums []int
		for n := range harness.AllFigures {
			nums = append(nums, n)
		}
		sort.Ints(nums)
		for _, n := range nums {
			t0 := time.Now()
			out, err := harness.Render(n, sc, *seed)
			if err != nil {
				fmt.Fprintln(stderr, "bulletctl:", err)
				return 1
			}
			path := fmt.Sprintf("%s/figure%02d.dat", *all, n)
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				fmt.Fprintln(stderr, "bulletctl:", err)
				return 1
			}
			fmt.Fprintf(stderr, "wrote %s (%.1fs)\n", path, time.Since(t0).Seconds())
		}
		return 0
	}

	start := time.Now()
	out, err := harness.Render(*figure, sc, *seed)
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return 1
	}
	if *summary {
		// The summary table ends at the first blank-line + '#' block.
		for _, line := range splitKeep(out) {
			if len(line) > 0 && line[0] == '#' {
				break
			}
			fmt.Fprintln(stdout, line)
		}
	} else {
		fmt.Fprint(stdout, out)
	}
	fmt.Fprintf(stderr, "[figure %d, scale %.2f, %.1fs wall]\n", *figure, *scale, time.Since(start).Seconds())
	return 0
}

// loadScenario loads a -scenario file; "" means no scenario.
func loadScenario(path string, stderr io.Writer) (*bulletprime.Scenario, bool) {
	if path == "" {
		return nil, true
	}
	sc, err := bulletprime.LoadScenario(path)
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return nil, false
	}
	return sc, true
}

// openArchiveFlag opens (creating if needed) an -archive directory for a
// recording subcommand; "" means archiving is off. version, when
// non-empty, overrides the code version stamped onto new records — the
// binary's VCS revision is only available when built with stamping (plain
// `go run` records "dev"), so commit-vs-commit workflows pass it
// explicitly.
func openArchiveFlag(dir, version string, stderr io.Writer) (*bulletprime.Archive, bool) {
	if dir == "" {
		return nil, true
	}
	arch, err := bulletprime.OpenArchive(dir)
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return nil, false
	}
	if version != "" {
		arch.SetVersion(version)
	}
	return arch, true
}

// interruptContext returns a context cancelled by the first SIGINT, so a
// long experiment stops at the next event boundary and still reports its
// partial results.
func interruptContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt)
}

// runSingle implements the run subcommand on the session API: one
// experiment, optionally under a declarative scenario, with a per-node
// completion summary, live -progress streaming, optional archival, and
// ctrl-C returning partial results.
func runSingle(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	var (
		nodes    = fs.Int("nodes", 30, "overlay size including the source")
		fileMB   = fs.Float64("filemb", 10, "file size in MB")
		protocol = fs.String("protocol", "bulletprime", "protocol (any registered; see bulletprime.Protocols)")
		network  = fs.String("network", "modelnet", "network preset (any registered)")
		scenFile = fs.String("scenario", "", "JSON scenario file to apply")
		dynamic  = fs.Bool("dynamic", false, "enable the synthetic bandwidth-change process")
		seed     = fs.Int64("seed", 1, "master random seed")
		deadline = fs.Float64("deadline", 3600, "virtual-time deadline in seconds")
		progress = fs.Bool("progress", false, "stream live samples to stderr while running")
		every    = fs.Float64("every", 5, "sample cadence in virtual seconds (progress lines, live metrics, archived series)")
		metrics  = fs.String("metrics-addr", "", "serve the run's live metrics on this address (/metrics Prometheus, /metrics.json; :0 picks a port)")
		archDir  = fs.String("archive", "", "record the completed run into this experiment archive")
		version  = fs.String("version", "", "code version stamped onto archived runs (default: binary VCS revision, or dev)")
		engine   = fs.String("engine", "sequential", "execution engine: sequential or sharded (sharded needs a clustered network and a sharded protocol, e.g. scalefill)")
		shards   = fs.Int("shards", 0, "shard count for -engine sharded (0 = default; part of the experiment's identity)")
		timeout  = fs.Float64("timeout", 0, "wall-clock bound in seconds; on expiry the run stops, prints partial results, and exits 1")
		stream   = fs.Bool("stream", false, "live-streaming run: the source paces emission at -bitrate for -duration and viewers are tracked for lag/rebuffering")
		bitrate  = fs.Float64("bitrate", 2, "stream: source bitrate in Mbps")
		duration = fs.Float64("duration", 60, "stream: emission duration in virtual seconds")
		playout  = fs.Float64("playout", 0, "stream: viewer playout buffer depth in seconds of content (0 = default 4)")
		rate     = fs.Float64("rate", 0, "testbed-udp: virtual seconds per wall second (0 = real time)")
		rto      = fs.Float64("rto", 0, "testbed-udp: wall retransmission timeout in seconds (0 = default 0.05)")
		drop     = fs.Float64("drop", 0, "testbed-udp: injected uniform packet-loss probability")
		dropseed = fs.Int64("dropseed", 0, "testbed-udp: loss-injector seed")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = fs.String("memprofile", "", "write an allocation profile of the run to this file")
	)
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "bulletctl run: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	mode, ok := parseEngine(*engine, stderr)
	if !ok {
		return 2
	}
	var testbed *bulletprime.TestbedOptions
	if bulletprime.NetworkPreset(*network) == bulletprime.NetworkTestbedUDP {
		testbed = &bulletprime.TestbedOptions{Rate: *rate, RTO: *rto, DropProb: *drop, DropSeed: *dropseed}
	} else if *rate != 0 || *rto != 0 || *drop != 0 || *dropseed != 0 {
		fmt.Fprintln(stderr, "bulletctl run: -rate/-rto/-drop/-dropseed require -network testbed-udp")
		return 2
	}
	// The streaming flags are usage-checked here rather than left to config
	// validation: a silently ignored -bitrate would run a different
	// experiment than the one asked for.
	explicit := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if !*stream && (explicit["bitrate"] || explicit["duration"] || explicit["playout"]) {
		fmt.Fprintln(stderr, "bulletctl run: -bitrate/-duration/-playout require -stream")
		return 2
	}
	if *stream && explicit["filemb"] {
		fmt.Fprintln(stderr, "bulletctl run: -stream derives the content size from -bitrate and -duration; drop -filemb")
		return 2
	}
	fileBytes := *fileMB * 1e6
	var streamOpts *bulletprime.StreamOptions
	if *stream {
		fileBytes = 0
		streamOpts = &bulletprime.StreamOptions{
			BitrateBps:   *bitrate * 1e6 / 8,
			Duration:     *duration,
			PlayoutDepth: *playout,
		}
	}
	scen, ok := loadScenario(*scenFile, stderr)
	if !ok {
		return 1
	}
	arch, ok := openArchiveFlag(*archDir, *version, stderr)
	if !ok {
		return 1
	}

	start := time.Now()
	exp, err := bulletprime.New(bulletprime.RunConfig{
		Protocol:         bulletprime.Protocol(*protocol),
		Nodes:            *nodes,
		FileBytes:        fileBytes,
		Network:          bulletprime.NetworkPreset(*network),
		DynamicBandwidth: *dynamic,
		Scenario:         scen,
		Seed:             *seed,
		Deadline:         *deadline,
		Engine:           mode,
		Shards:           *shards,
		Testbed:          testbed,
		Stream:           streamOpts,
		// The CLI prints aggregates and streams -progress through an
		// observer, never Result.Series — but an archived run records a
		// series at the -every cadence so show/metrics can render it later.
		SampleEvery: seriesEvery(arch != nil, *every),
		Archive:     arch,
	})
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return 1
	}
	streamed := make(chan struct{})
	if *progress {
		obs, err := exp.Subscribe(bulletprime.ObserverConfig{Every: *every})
		if err != nil {
			fmt.Fprintln(stderr, "bulletctl:", err)
			return 1
		}
		go func() {
			defer close(streamed)
			for s := range obs.Samples() {
				// The progress line follows the workload kind: a live stream
				// is judged by viewer lag and rebuffering, not completions.
				if *stream {
					fmt.Fprintf(stderr, "t=%7.1fs  lag p50 %6.2fs max %6.2fs  %2d rebuffering (%d events)  %8.2f Mbps viewer goodput\n",
						s.Time, s.StreamLagP50, s.StreamLagMax,
						s.Rebuffering, s.RebufferEvents, s.StreamGoodputBps*8/1e6)
				} else {
					fmt.Fprintf(stderr, "t=%7.1fs  %3d/%d done  %8.2f Mbps goodput  %5.2f%% control\n",
						s.Time, s.Completed, s.Receivers, s.GoodputBps*8/1e6,
						100*s.ControlBytes/max1(s.ControlBytes+s.DataBytes))
				}
				for _, a := range s.Annotations {
					fmt.Fprintf(stderr, "           event @%.1fs: %s\n", a.At, a.Text)
				}
			}
		}()
	} else {
		close(streamed)
	}
	prof, ok := startProfiles(*cpuProf, *memProf, stderr)
	if !ok {
		return 1
	}
	ctx, stop := interruptContext()
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(*timeout*float64(time.Second)))
		defer cancel()
	}
	var msrv *metricsServer
	if *metrics != "" {
		labels := map[string]string{
			"protocol": *protocol,
			"network":  *network,
			"seed":     fmt.Sprintf("%d", *seed),
		}
		msrv, err = serveMetrics(*metrics, exp, labels, *every, stderr)
		if err != nil {
			fmt.Fprintln(stderr, "bulletctl:", err)
			return 1
		}
	}
	res, err := exp.Run(ctx)
	if msrv != nil {
		// The run is over (every observer stream is closed), so the last
		// stored sample is final; stop accepting scrapes.
		msrv.close()
	}
	profOK := prof.stop(stderr)
	if err != nil && res == nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return 1
	}
	if !profOK {
		return 1
	}
	<-streamed
	if rep := res.Stream; rep != nil {
		fmt.Fprintf(stdout, "%-14s %-12s %6s %9s %9s %9s %10s %9s %9s %11s\n",
			"protocol", "network", "seed", "lag_p50_s", "lag_p90_s", "lag_max_s",
			"jitter_p50", "rebuffers", "stall_s", "goodput_mbps")
		fmt.Fprintf(stdout, "%-14s %-12s %6d %9.2f %9.2f %9.2f %10.3f %9d %9.1f %11.2f\n",
			*protocol, *network, *seed, rep.LagP50, rep.LagP90, rep.LagMax,
			rep.JitterP50, rep.Rebuffers, rep.StallS, rep.GoodputBps*8/1e6)
		fmt.Fprintf(stdout, "target %.2f Mbps for %.0fs; %d/%d viewers live, startup p50 %.2fs\n",
			rep.TargetBps*8/1e6, rep.Duration, rep.Live, rep.Live+rep.Dead, rep.StartupP50)
	} else {
		fmt.Fprintf(stdout, "%-14s %-12s %6s %10s %10s %10s %9s %11s\n",
			"protocol", "network", "seed", "best_s", "median_s", "worst_s", "finished", "completions")
		fmt.Fprintf(stdout, "%-14s %-12s %6d %10.1f %10.1f %10.1f %9v %11d\n",
			*protocol, *network, *seed, res.Best(), res.Median(), res.Worst(),
			res.Finished, len(res.CompletionTimes))
	}
	if res.Cancelled {
		fmt.Fprintln(stdout, "run cancelled; results above are partial")
	}
	if err != nil {
		// The run completed but archiving it failed.
		fmt.Fprintln(stderr, "bulletctl:", err)
		return 1
	}
	if res.Cancelled && *timeout > 0 && errors.Is(ctx.Err(), context.DeadlineExceeded) {
		fmt.Fprintf(stderr, "bulletctl: run exceeded -timeout %vs\n", *timeout)
		return 1
	}
	if id := exp.RunID(); id != "" {
		fmt.Fprintf(stderr, "archived as %s in %s\n", id, *archDir)
	}
	fmt.Fprintf(stderr, "[run, %.1fs wall]\n", time.Since(start).Seconds())
	return 0
}

// runCrosscheck implements the crosscheck subcommand: the sim-vs-testbed
// comparison harness. One configuration runs twice — once on the emulated
// clean ModelNet network and once over real loopback UDP sockets — and the
// two completion-time CDFs are diffed into the archive layer's quantile
// comparison report. With -archive, both runs are recorded (each under its
// own content address) before the report prints.
func runCrosscheck(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("crosscheck", flag.ContinueOnError)
	var (
		nodes    = fs.Int("nodes", 8, "overlay size including the source")
		fileMB   = fs.Float64("filemb", 0.25, "file size in MB")
		protocol = fs.String("protocol", "bulletprime", "protocol (any registered)")
		seed     = fs.Int64("seed", 1, "master random seed (shared by both runs)")
		deadline = fs.Float64("deadline", 1800, "virtual-time deadline in seconds")
		rate     = fs.Float64("rate", 25, "testbed clock rate: virtual seconds per wall second")
		drop     = fs.Float64("drop", 0, "testbed injected uniform packet-loss probability")
		dropseed = fs.Int64("dropseed", 0, "testbed loss-injector seed")
		archDir  = fs.String("archive", "", "record both runs into this experiment archive")
		version  = fs.String("version", "", "code version stamped onto archived runs")
	)
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "bulletctl crosscheck: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	arch, ok := openArchiveFlag(*archDir, *version, stderr)
	if !ok {
		return 1
	}

	base := bulletprime.RunConfig{
		Protocol:    bulletprime.Protocol(*protocol),
		Nodes:       *nodes,
		FileBytes:   *fileMB * 1e6,
		Seed:        *seed,
		Deadline:    *deadline,
		SampleEvery: -1,
		Archive:     arch,
	}
	simCfg := base
	// The emulated twin of the testbed preset's neutral overlay topology.
	simCfg.Network = bulletprime.NetworkModelNetClean
	tbCfg := base
	tbCfg.Network = bulletprime.NetworkTestbedUDP
	tbCfg.Testbed = &bulletprime.TestbedOptions{Rate: *rate, DropProb: *drop, DropSeed: *dropseed}

	// Validate both configurations before spending wall-clock time on
	// either run.
	simExp, err := bulletprime.New(simCfg)
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl: emulated:", err)
		return 1
	}
	tbExp, err := bulletprime.New(tbCfg)
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl: testbed-udp:", err)
		return 1
	}

	start := time.Now()
	ctx, stop := interruptContext()
	defer stop()
	runOne := func(label string, exp *bulletprime.Experiment) (*bulletprime.Result, string, bool) {
		res, err := exp.Run(ctx)
		if err != nil {
			// Setup failure (empty result) or a failed archive record; either
			// way the comparison would be meaningless.
			fmt.Fprintf(stderr, "bulletctl: %s: %v\n", label, err)
			return nil, "", false
		}
		if res.Cancelled {
			fmt.Fprintf(stderr, "bulletctl: %s run cancelled\n", label)
			return nil, "", false
		}
		fmt.Fprintf(stderr, "[%s done: %d completions, median %.1fs virtual]\n",
			label, len(res.CompletionTimes), res.Median())
		return res, exp.RunID(), true
	}
	simRes, simID, ok := runOne("emulated", simExp)
	if !ok {
		return 1
	}
	tbRes, tbID, ok := runOne("testbed-udp", tbExp)
	if !ok {
		return 1
	}

	mkRun := func(cfg bulletprime.RunConfig, res *bulletprime.Result) *bulletprime.ArchivedRun {
		r := &bulletprime.ArchivedRun{CompletionTimes: res.CompletionTimes}
		r.Meta.Seed = cfg.Seed
		r.Meta.Protocol = string(cfg.Protocol)
		r.Meta.Network = string(cfg.Network)
		return r
	}
	cmp := bulletprime.CompareArchived(
		"emulated", []*bulletprime.ArchivedRun{mkRun(simCfg, simRes)},
		"testbed-udp", []*bulletprime.ArchivedRun{mkRun(tbCfg, tbRes)},
	)
	fmt.Fprint(stdout, cmp.Report())
	if simID != "" || tbID != "" {
		fmt.Fprintf(stderr, "archived as %s (emulated) and %s (testbed) in %s\n", simID, tbID, *archDir)
	}
	fmt.Fprintf(stderr, "[crosscheck, %.1fs wall]\n", time.Since(start).Seconds())
	return 0
}

// seriesEvery picks the run's recorded-series cadence: archived runs keep a
// series so show/metrics can render them; unarchived CLI runs record none.
func seriesEvery(archived bool, every float64) float64 {
	if archived {
		return every
	}
	return -1
}

func max1(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return x
}

// runScenario implements the scenario subcommand; its only verb is lint,
// which validates a JSON scenario file and prints the compiled timeline.
// It returns the process exit code: 0 ok, 1 validation failure, 2 usage.
func runScenario(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 || args[0] != "lint" {
		fmt.Fprintln(stderr, "usage: bulletctl scenario lint [-nodes N] file.json")
		return 2
	}
	fs := flag.NewFlagSet("scenario lint", flag.ContinueOnError)
	nodes := fs.Int("nodes", 30, "overlay size to validate against")
	if code := parseFlags(fs, args[1:], stderr); code >= 0 {
		return code
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: bulletctl scenario lint [-nodes N] file.json")
		return 2
	}
	sc, err := bulletprime.LoadScenario(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return 1
	}
	prog, err := sc.Compile(*nodes)
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return 1
	}
	fmt.Fprint(stdout, prog.Timeline())
	fmt.Fprintf(stdout, "ok: %s\n", fs.Arg(0))
	return 0
}

// runSweep implements the sweep subcommand: a seeds × protocols × networks
// cross product fanned across a worker pool of sessions. With -progress,
// each cell is reported on stderr the moment it completes; with -archive,
// each completed cell is recorded as it finishes.
func runSweep(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		nodes     = fs.Int("nodes", 100, "overlay size including the source")
		fileMB    = fs.Float64("filemb", 10, "file size in MB")
		seeds     = fs.Int("seeds", 4, "number of seeds (1..n)")
		reps      = fs.Int("reps", 1, "repetitions per cell with derived seeds (feeds the statistical gate)")
		protocols = fs.String("protocols", "bulletprime", "comma-separated protocols (any registered)")
		networks  = fs.String("networks", "modelnet", "comma-separated network presets (any registered)")
		dynamic   = fs.Bool("dynamic", false, "enable the synthetic bandwidth-change process")
		scenFile  = fs.String("scenario", "", "JSON scenario file applied to every cell")
		parallel  = fs.Int("parallel", 0, "worker-pool size (0 = one per CPU)")
		deadline  = fs.Float64("deadline", 3600, "virtual-time deadline in seconds")
		progress  = fs.Bool("progress", false, "report each cell on stderr as it completes")
		archDir   = fs.String("archive", "", "record every completed cell into this experiment archive")
		version   = fs.String("version", "", "code version stamped onto archived runs (default: binary VCS revision, or dev)")
		engine    = fs.String("engine", "sequential", "execution engine for every cell: sequential or sharded")
		shards    = fs.Int("shards", 0, "shard count for -engine sharded (0 = default)")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProf   = fs.String("memprofile", "", "write an allocation profile of the sweep to this file")
	)
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "bulletctl sweep: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	mode, ok := parseEngine(*engine, stderr)
	if !ok {
		return 2
	}
	scen, ok := loadScenario(*scenFile, stderr)
	if !ok {
		return 1
	}
	arch, ok := openArchiveFlag(*archDir, *version, stderr)
	if !ok {
		return 1
	}

	cfg := bulletprime.SweepConfig{
		Reps: *reps,
		Base: bulletprime.RunConfig{
			Nodes:            *nodes,
			FileBytes:        *fileMB * 1e6,
			DynamicBandwidth: *dynamic,
			Scenario:         scen,
			Deadline:         *deadline,
			Parallel:         *parallel,
			Engine:           mode,
			Shards:           *shards,
			Archive:          arch,
		},
	}
	for s := int64(1); s <= int64(*seeds); s++ {
		cfg.Seeds = append(cfg.Seeds, s)
	}
	for _, p := range strings.Split(*protocols, ",") {
		if p = strings.TrimSpace(p); p != "" {
			cfg.Protocols = append(cfg.Protocols, bulletprime.Protocol(p))
		}
	}
	for _, nw := range strings.Split(*networks, ",") {
		if nw = strings.TrimSpace(nw); nw != "" {
			cfg.Networks = append(cfg.Networks, bulletprime.NetworkPreset(nw))
		}
	}

	prof, ok := startProfiles(*cpuProf, *memProf, stderr)
	if !ok {
		return 1
	}
	start := time.Now()
	var runs []bulletprime.SweepRun
	total, cancelled := 0, 0
	archErrs := 0
	if *progress {
		// The streaming path: per-cell sessions sampled while they run,
		// reported the moment they finish, SIGINT returning partial results.
		ctx, stop := interruptContext()
		defer stop()
		// The summary tables only need aggregates; no cell subscribes an
		// observer, so turn per-cell time-series recording off.
		cfg.Base.SampleEvery = -1
		ch, err := bulletprime.SweepStream(ctx, cfg, nil)
		if err != nil {
			prof.stop(stderr)
			fmt.Fprintln(stderr, "bulletctl:", err)
			return 1
		}
		for r := range ch {
			runs = append(runs, r)
			total++
			if r.Err != nil {
				archErrs++
				fmt.Fprintln(stderr, "bulletctl:", r.Err)
			}
			if r.Result.Cancelled {
				cancelled++
				continue
			}
			fmt.Fprintf(stderr, "[%3d done] %-14s %-12s seed %-3d median %8.1fs worst %8.1fs\n",
				total, r.Protocol, r.Network, r.Seed, r.Result.Median(), r.Result.Worst())
		}
		sort.Slice(runs, func(i, j int) bool { return runs[i].Index < runs[j].Index })
	} else {
		// Unobserved cells skip the sampling hooks entirely.
		var err error
		runs, err = bulletprime.Sweep(cfg)
		if err != nil {
			prof.stop(stderr)
			fmt.Fprintln(stderr, "bulletctl:", err)
			return 1
		}
		total = len(runs)
		for _, r := range runs {
			if r.Err != nil {
				archErrs++
				fmt.Fprintln(stderr, "bulletctl:", r.Err)
			}
		}
	}

	if !prof.stop(stderr) {
		return 1
	}
	fmt.Fprintf(stdout, "%-14s %-12s %6s %10s %10s %10s %9s\n",
		"protocol", "network", "seed", "best_s", "median_s", "worst_s", "finished")
	type key struct {
		p bulletprime.Protocol
		n bulletprime.NetworkPreset
	}
	pooled := make(map[key][]float64)
	var order []key
	for _, r := range runs {
		if r.Result.Cancelled {
			// Stopped mid-flight or never started: no completion statistics
			// to report or pool.
			fmt.Fprintf(stdout, "%-14s %-12s %6d %43s\n", r.Protocol, r.Network, r.Seed, "(cancelled)")
			continue
		}
		fmt.Fprintf(stdout, "%-14s %-12s %6d %10.1f %10.1f %10.1f %9v\n",
			r.Protocol, r.Network, r.Seed,
			r.Result.Best(), r.Result.Median(), r.Result.Worst(), r.Result.Finished)
		k := key{r.Protocol, r.Network}
		if _, ok := pooled[k]; !ok {
			order = append(order, k)
		}
		pooled[k] = append(pooled[k], r.Result.Median())
	}
	if cancelled > 0 {
		fmt.Fprintf(stdout, "%d of %d cells cancelled; pooled statistics cover completed cells only\n",
			cancelled, total)
	}
	fmt.Fprintln(stdout)
	for _, k := range order {
		meds := pooled[k]
		sort.Float64s(meds)
		fmt.Fprintf(stdout, "%-14s %-12s pooled median-of-medians over %d seeds: %.1f s\n",
			k.p, k.n, len(meds), meds[len(meds)/2])
	}
	fmt.Fprintf(stderr, "[%d runs, parallel=%d, %.1fs wall]\n",
		len(runs), *parallel, time.Since(start).Seconds())
	if archErrs > 0 {
		fmt.Fprintf(stderr, "bulletctl: %d cell(s) failed to archive\n", archErrs)
		return 1
	}
	return 0
}

func splitKeep(s string) []string {
	var out []string
	cur := make([]byte, 0, 128)
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, string(cur))
			cur = cur[:0]
			continue
		}
		cur = append(cur, s[i])
	}
	return append(out, string(cur))
}
