package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestRunProfileAndEngineExitCodes is the exit-code table for the pprof and
// engine flags on run and sweep: 0 with profiles written, 1 on unwritable
// profile paths or a misconfigured sharded run, 2 on a bad -engine value.
func TestRunProfileAndEngineExitCodes(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	// Small but real: a sequential run and a 2-cluster sharded run.
	seqArgs := []string{"-nodes", "10", "-filemb", "0.5", "-seed", "1"}
	shardArgs := []string{"-nodes", "50", "-filemb", "1", "-seed", "1",
		"-network", "clustered", "-protocol", "scalefill", "-engine", "sharded", "-shards", "2"}

	cases := []struct {
		name string
		cmd  func(args []string, stdout, stderr io.Writer) int
		args []string
		want int
	}{
		{"run with profiles", runSingle,
			append([]string{"-cpuprofile", cpu, "-memprofile", mem}, seqArgs...), 0},
		{"run sharded", runSingle, shardArgs, 0},
		{"run bad engine", runSingle,
			append([]string{"-engine", "warp"}, seqArgs...), 2},
		{"run sharded with sequential protocol", runSingle,
			[]string{"-nodes", "50", "-network", "clustered", "-engine", "sharded"}, 1},
		{"run unwritable cpuprofile", runSingle,
			append([]string{"-cpuprofile", filepath.Join(dir, "absent", "cpu.pprof")}, seqArgs...), 1},
		{"sweep with profiles", runSweep,
			[]string{"-nodes", "10", "-filemb", "0.5", "-seeds", "1",
				"-cpuprofile", filepath.Join(dir, "sweep-cpu.pprof"),
				"-memprofile", filepath.Join(dir, "sweep-mem.pprof")}, 0},
		{"sweep bad engine", runSweep,
			[]string{"-engine", "warp"}, 2},
		{"sweep unwritable memprofile", runSweep,
			[]string{"-memprofile", filepath.Join(dir, "absent", "mem.pprof")}, 1},
	}
	for _, tc := range cases {
		var out, errb bytes.Buffer
		if code := tc.cmd(tc.args, &out, &errb); code != tc.want {
			t.Errorf("%s: exit %d, want %d (stderr %q)", tc.name, code, tc.want, errb.String())
		}
	}

	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}
