package main

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"bulletprime"
)

// Profiling hooks for shard-balance tuning: -cpuprofile/-memprofile on the
// run and sweep subcommands bracket the experiment itself (flag parsing and
// result printing are not profiled). The outputs are standard pprof
// profiles; inspect with `go tool pprof`.

// profiles holds the open profile outputs of one profiled command.
type profiles struct {
	cpuFile *os.File
	memFile *os.File
}

// startProfiles opens the requested profile outputs and begins CPU
// profiling. Both paths are created up front so an unwritable path fails
// before the experiment runs, not after it. "" disables an output. On
// failure everything already started is unwound.
func startProfiles(cpu, mem string, stderr io.Writer) (*profiles, bool) {
	p := &profiles{}
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fmt.Fprintln(stderr, "bulletctl:", err)
			return nil, false
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "bulletctl:", err)
			return nil, false
		}
		p.cpuFile = f
	}
	if mem != "" {
		f, err := os.Create(mem)
		if err != nil {
			p.unwindCPU()
			fmt.Fprintln(stderr, "bulletctl:", err)
			return nil, false
		}
		p.memFile = f
	}
	return p, true
}

func (p *profiles) unwindCPU() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		p.cpuFile.Close()
		p.cpuFile = nil
	}
}

// stop finishes CPU profiling and writes the allocation profile. It is
// idempotent, so commands may call it on every exit path.
func (p *profiles) stop(stderr io.Writer) bool {
	ok := true
	p.unwindCPU()
	if p.memFile != nil {
		runtime.GC() // flush recent allocations into the heap profile
		if err := pprof.Lookup("allocs").WriteTo(p.memFile, 0); err != nil {
			fmt.Fprintln(stderr, "bulletctl:", err)
			ok = false
		}
		p.memFile.Close()
		p.memFile = nil
	}
	return ok
}

// parseEngine maps the -engine flag to an EngineMode; an unknown name is a
// usage error (exit 2), like any other malformed flag value.
func parseEngine(name string, stderr io.Writer) (bulletprime.EngineMode, bool) {
	switch name {
	case "", "sequential":
		return bulletprime.EngineSequential, true
	case "sharded":
		return bulletprime.EngineSharded, true
	default:
		fmt.Fprintf(stderr, "bulletctl: unknown engine %q (sequential or sharded)\n", name)
		return bulletprime.EngineSequential, false
	}
}
