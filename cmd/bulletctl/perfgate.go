package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bulletprime/internal/lab"
)

// runPerfGate checks `go test -bench -benchmem` output against the
// committed micro-benchmark baseline (BENCH_PERF.json): allocs/op compare
// exactly — the allocation-free event core's tripwire — and ns/op within
// the baseline's generous fractional tolerance. Exit 0 within bounds, 1 on
// regression (or missing benchmark, or -write failure). -write captures
// the input as the new baseline instead of checking; regenerate with the
// exact benchmark command CI runs (see .github/workflows/ci.yml) so
// -benchtime effects match, and commit the result alongside the change
// that moved the numbers — the same flow as `bulletctl gate -write`.
func runPerfGate(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("perfgate", flag.ContinueOnError)
	input := fs.String("input", "-", "benchmark output file, or - for stdin")
	baseFile := fs.String("baseline", "", "perf baseline JSON file (e.g. BENCH_PERF.json)")
	tol := fs.Float64("tol", 1.0, "fractional ns/op tolerance for -write, e.g. 1.0 = +100%")
	write := fs.Bool("write", false, "capture the input as the new baseline and exit")
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "bulletctl perfgate: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if *baseFile == "" {
		fmt.Fprintln(stderr, "usage: go test -run '^$' -bench ... -benchmem ./... | bulletctl perfgate -baseline BENCH_PERF.json [-write]")
		return 2
	}

	var r io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintln(stderr, "bulletctl:", err)
			return 1
		}
		defer f.Close()
		r = f
	}
	measured, err := lab.ParseBenchOutput(r)
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return 1
	}

	if *write {
		base, err := lab.PerfBaselineFrom(measured, *tol)
		if err != nil {
			fmt.Fprintln(stderr, "bulletctl:", err)
			return 1
		}
		// ns_ceiling values are hand-set relations, not measurements — carry
		// them over from the baseline being replaced so -write does not
		// silently drop the absolute bounds.
		if old, err := lab.LoadPerfBaseline(*baseFile); err == nil {
			for name, oe := range old.Benchmarks {
				if oe.NsCeiling > 0 {
					if ne, ok := base.Benchmarks[name]; ok {
						ne.NsCeiling = oe.NsCeiling
						base.Benchmarks[name] = ne
					}
				}
			}
		}
		if err := base.Save(*baseFile); err != nil {
			fmt.Fprintln(stderr, "bulletctl:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s: ns tolerance %g, %d benchmark(s)\n",
			*baseFile, base.NsTolerance, len(base.Benchmarks))
		return 0
	}

	base, err := lab.LoadPerfBaseline(*baseFile)
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return 1
	}
	results, ok := base.Gate(measured)
	fmt.Fprint(stdout, lab.RenderPerfGate(results, ok))
	if !ok {
		return 1
	}
	return 0
}
