package main

import (
	"bytes"
	"strings"
	"testing"
)

// single runs the run subcommand and returns its exit code plus output.
func single(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = runSingle(args, &out, &errb)
	return code, out.String(), errb.String()
}

// crosscheck runs the crosscheck subcommand and returns its exit code plus
// output.
func crosscheck(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = runCrosscheck(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunTestbedExitCodes(t *testing.T) {
	// 2: testbed knobs without the testbed network.
	if code, _, stderr := single(t, "-rate", "50"); code != 2 || !strings.Contains(stderr, "testbed-udp") {
		t.Fatalf("-rate without testbed network: exit %d (stderr %q), want 2 naming testbed-udp", code, stderr)
	}
	if code, _, _ := single(t, "-drop", "0.1"); code != 2 {
		t.Fatalf("-drop without testbed network: exit %d, want 2", code)
	}

	// 1: testbed network rejects emulator-only features at validation.
	if code, _, stderr := single(t, "-network", "testbed-udp", "-engine", "sharded"); code != 1 ||
		!strings.Contains(stderr, "sharded") {
		t.Fatalf("testbed+sharded: exit %d (stderr %q), want 1 naming the conflict", code, stderr)
	}

	if testing.Short() {
		t.Skip("wall-clock testbed runs skipped with -short")
	}

	// 0: a real loopback run completes and prints the summary table.
	code, stdout, _ := single(t, "-nodes", "8", "-filemb", "0.064", "-network", "testbed-udp", "-rate", "50")
	if code != 0 {
		t.Fatalf("loopback testbed run: exit %d, want 0 (stdout %q)", code, stdout)
	}
	if !strings.Contains(stdout, "median") {
		t.Fatalf("testbed run output missing summary: %q", stdout)
	}
}

func TestRunTimeoutExitsOneWithPartialResults(t *testing.T) {
	// A testbed run whose clock barely advances cannot finish before the
	// wall bound: rate 0.01 maps 0.25s of wall time to 2.5ms of virtual
	// time, so the timeout always wins.
	code, stdout, stderr := single(t, "-nodes", "8", "-filemb", "0.064",
		"-network", "testbed-udp", "-rate", "0.01", "-timeout", "0.25")
	if code != 1 {
		t.Fatalf("timed-out run: exit %d, want 1 (stderr %q)", code, stderr)
	}
	if !strings.Contains(stdout, "partial") {
		t.Fatalf("timed-out run did not flag partial results: %q", stdout)
	}
	if !strings.Contains(stderr, "-timeout") {
		t.Fatalf("timed-out run stderr does not name the bound: %q", stderr)
	}
}

func TestCrosscheckExitCodes(t *testing.T) {
	// 2: usage errors — positional argument, unknown flag.
	if code, _, _ := crosscheck(t, "extra"); code != 2 {
		t.Fatalf("positional arg: exit %d, want 2", code)
	}
	if code, _, _ := crosscheck(t, "-warp", "9"); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}

	// 1: validation failure surfaces from the testbed config.
	if code, _, _ := crosscheck(t, "-drop", "1.5"); code != 1 {
		t.Fatalf("bad drop probability: exit %d, want 1", code)
	}

	if testing.Short() {
		t.Skip("wall-clock testbed runs skipped with -short")
	}

	// 0: the happy path runs both backends, archives both, and prints the
	// quantile-delta report with both labels.
	dir := t.TempDir()
	code, stdout, stderr := crosscheck(t, "-nodes", "8", "-filemb", "0.064",
		"-rate", "50", "-archive", dir)
	if code != 0 {
		t.Fatalf("crosscheck: exit %d, want 0 (stderr %q)", code, stderr)
	}
	if !strings.Contains(stdout, "emulated") || !strings.Contains(stdout, "testbed-udp") {
		t.Fatalf("report missing backend labels: %q", stdout)
	}
	if !strings.Contains(stderr, "archived as") {
		t.Fatalf("crosscheck did not report the archive ids: %q", stderr)
	}
}
