package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bulletprime"
)

// TestRunProgressSharded is the exit-code/output table for `run -progress`
// across engines: the sharded engine streams real progress lines now that
// sharded sampling exists, and engine misconfigurations keep their distinct
// exit codes.
func TestRunProgressSharded(t *testing.T) {
	shardedArgs := []string{"-engine", "sharded", "-network", "clustered",
		"-protocol", "scalefill", "-nodes", "100", "-filemb", "1.5",
		"-seed", "7", "-deadline", "60"}
	cases := []struct {
		name   string
		args   []string
		want   int
		stderr string // required stderr substring
	}{
		{"sharded with progress", append([]string{"-progress", "-every", "10"}, shardedArgs...),
			0, "100/100 done"},
		{"sharded without progress", shardedArgs, 0, ""},
		{"unknown engine", []string{"-engine", "warp"}, 2, "unknown engine"},
		{"shards without sharded engine", []string{"-shards", "4"}, 1, "EngineSharded"},
		{"sharded on sequential-only network", []string{"-engine", "sharded",
			"-protocol", "scalefill"}, 1, "clustered"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := runRun(t, tc.args...)
			if code != tc.want {
				t.Fatalf("exit %d (stderr %q), want %d", code, stderr, tc.want)
			}
			if tc.stderr != "" && !strings.Contains(stderr, tc.stderr) {
				t.Fatalf("stderr %q missing %q", stderr, tc.stderr)
			}
			if tc.want == 0 && !strings.Contains(stdout, "completions") {
				t.Fatalf("successful run printed no summary:\n%s", stdout)
			}
		})
	}
}

// archiveOneRun records one small run (with a time-series) into a fresh
// archive and returns the directory and run id.
func archiveOneRun(t *testing.T) (dir, id string) {
	t.Helper()
	dir = t.TempDir()
	arch, err := bulletprime.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := bulletprime.New(bulletprime.RunConfig{
		Nodes:       10,
		FileBytes:   1e6,
		Seed:        3,
		Deadline:    3600,
		SampleEvery: 2,
		Archive:     arch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if id = exp.RunID(); id == "" {
		t.Fatal("run did not archive")
	}
	return dir, id
}

func TestMetricsSubcommand(t *testing.T) {
	dir, id := archiveOneRun(t)
	invoke := func(args ...string) (int, string, string) {
		var out, errb bytes.Buffer
		code := runMetrics(args, &out, &errb)
		return code, out.String(), errb.String()
	}

	code, stdout, stderr := invoke("-archive", dir, id)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	for _, want := range []string{
		"# TYPE bullet_run_finished gauge",
		"# TYPE bullet_completions_total counter",
		`run="` + id + `"`,
		"bullet_sample_time_seconds", // the archived series' last sample
	} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, stdout)
		}
	}

	code, stdout, _ = invoke("-archive", dir, "-format", "json", id)
	if code != 0 {
		t.Fatalf("json format: exit %d", code)
	}
	var metrics []map[string]any
	if err := json.Unmarshal([]byte(stdout), &metrics); err != nil || len(metrics) == 0 {
		t.Fatalf("json output does not parse (%v):\n%s", err, stdout)
	}

	if code, _, _ = invoke("-archive", dir, "-format", "xml", id); code != 2 {
		t.Fatalf("unknown format: exit %d, want 2", code)
	}
	if code, _, _ = invoke("-archive", dir); code != 2 {
		t.Fatalf("missing run id: exit %d, want 2", code)
	}
	if code, _, _ = invoke("-archive", dir, "ffffffffffffffff"); code != 1 {
		t.Fatalf("unmatched run id: exit %d, want 1", code)
	}
	if code, _, _ = invoke("-archive", filepath.Join(dir, "absent"), id); code != 1 {
		t.Fatalf("missing archive: exit %d, want 1", code)
	}
}

func TestTraceSubcommand(t *testing.T) {
	invoke := func(args ...string) (int, string, string) {
		var out, errb bytes.Buffer
		code := runTrace(args, &out, &errb)
		return code, out.String(), errb.String()
	}
	base := []string{"-nodes", "10", "-filemb", "1", "-seed", "3", "-deadline", "600"}

	// Chrome export to a file is a loadable trace_event JSON array.
	out := filepath.Join(t.TempDir(), "run.trace.json")
	code, stdout, stderr := invoke(append([]string{"-o", out}, base...)...)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if stdout != "" {
		t.Fatalf("-o wrote to stdout too: %q", stdout)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(blob, &events); err != nil || len(events) == 0 {
		t.Fatalf("chrome trace does not parse (%v)", err)
	}
	if events[0]["ph"] != "i" || events[0]["name"] == "" {
		t.Fatalf("event 0 = %v, want an instant event", events[0])
	}
	if !strings.Contains(stderr, "promote=") {
		t.Fatalf("stderr %q missing the per-kind counts", stderr)
	}

	// JSONL to stdout: one parseable span per line.
	code, stdout, _ = invoke(append([]string{"-format", "jsonl"}, base...)...)
	if code != 0 {
		t.Fatalf("jsonl: exit %d", code)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) == 0 {
		t.Fatal("jsonl: no spans")
	}
	var span map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &span); err != nil || span["kind"] == "" {
		t.Fatalf("jsonl line 0 does not parse (%v): %q", err, lines[0])
	}

	// A sharded trace exports the deterministically merged spans.
	code, stdout, _ = invoke("-engine", "sharded", "-network", "clustered",
		"-protocol", "scalefill", "-nodes", "100", "-filemb", "1.5",
		"-seed", "7", "-deadline", "60", "-format", "jsonl")
	if code != 0 {
		t.Fatalf("sharded trace: exit %d", code)
	}
	if n := len(strings.Split(strings.TrimSpace(stdout), "\n")); n != 300 {
		t.Fatalf("sharded trace exported %d spans, want 300 (100 nodes x 3 rounds)", n)
	}

	if code, _, _ = invoke(append([]string{"-format", "xml"}, base...)...); code != 2 {
		t.Fatalf("unknown format: exit %d, want 2", code)
	}
	if code, _, _ = invoke(append([]string{"extra"}, base...)...); code != 2 {
		t.Fatalf("positional arg: exit %d, want 2", code)
	}
}

// TestShowSeriesSummary checks the show subcommand renders the archived
// time-series digest (satellite of the observability plane: archived runs
// are inspectable without re-export).
func TestShowSeriesSummary(t *testing.T) {
	dir, id := archiveOneRun(t)
	var out, errb bytes.Buffer
	if code := runShow([]string{"-archive", dir, id}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{"series (", "metric", "first", "max", "completed", "goodput_bps", "data_bytes"} {
		if !strings.Contains(got, want) {
			t.Fatalf("show output missing %q:\n%s", want, got)
		}
	}
	// No streaming or testbed columns for a plain one-shot run.
	if strings.Contains(got, "stream_lag") || strings.Contains(got, "testbed_rtt") {
		t.Fatalf("show output renders optional columns the run never populated:\n%s", got)
	}
}

// TestServeMetricsLive drives the `run -metrics-addr` scrape endpoint: a
// live observer feeds the latest sample, and both renderings serve it.
func TestServeMetricsLive(t *testing.T) {
	exp, err := bulletprime.New(bulletprime.RunConfig{
		Nodes:     10,
		FileBytes: 1e6,
		Seed:      3,
		Deadline:  3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	var errb bytes.Buffer
	labels := map[string]string{"protocol": "bulletprime", "network": "modelnet", "seed": "3"}
	m, err := serveMetrics("127.0.0.1:0", exp, labels, 1, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-m.drained // the final sample is stored
	get := func(path string) string {
		resp, err := http.Get("http://" + m.addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	prom := get("/metrics")
	// The endpoint serves the last emitted sample (the closing flush sits
	// below the observer cadence gate), so assert the stable facts: the
	// family exists with the run's labels, and the receiver count is exact.
	for _, want := range []string{
		"# TYPE bullet_completed_receivers gauge",
		`bullet_completed_receivers{network="modelnet",protocol="bulletprime",seed="3"} `,
		`bullet_receivers{network="modelnet",protocol="bulletprime",seed="3"} 9`,
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, prom)
		}
	}
	var metrics []map[string]any
	if err := json.Unmarshal([]byte(get("/metrics.json")), &metrics); err != nil || len(metrics) == 0 {
		t.Fatalf("/metrics.json does not parse (%v)", err)
	}
	m.close()
	if !strings.Contains(errb.String(), "serving live metrics") {
		t.Fatalf("bound address not reported: %q", errb.String())
	}
}
