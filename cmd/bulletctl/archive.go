package main

// The archive subcommands: ls, show, compare, report, and gate operate on
// a persistent experiment archive recorded by `run -archive` and
// `sweep -archive` (or any program setting RunConfig.Archive). All output
// except timestamps is deterministic for a deterministic simulation, so
// compare/report/gate output is golden-testable and diff-friendly.

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"bulletprime/internal/lab"
)

// openArchiveArg opens the mandatory -archive directory for a read-side
// subcommand. Unlike the run/sweep flag it must be provided, and it must
// already exist: a mistyped path is an error, not a fresh empty archive
// silently created as a side effect of listing it.
func openArchiveArg(dir string, stderr io.Writer) (*lab.Archive, int) {
	if dir == "" {
		fmt.Fprintln(stderr, "bulletctl: -archive DIR is required")
		return nil, 2
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		fmt.Fprintf(stderr, "bulletctl: archive %s: not an existing directory\n", dir)
		return nil, 1
	}
	arch, err := lab.Open(dir)
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return nil, 1
	}
	return arch, -1
}

// selectRuns applies a -a/-b/-filter selector string against the archive.
func selectRuns(arch *lab.Archive, selector string, stderr io.Writer) ([]*lab.Run, int) {
	f, err := lab.ParseFilter(selector)
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return nil, 2
	}
	runs, err := arch.Select(f)
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return nil, 1
	}
	return runs, -1
}

// runLs lists archived runs, one row each, in the archive's deterministic
// catalog order.
func runLs(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ls", flag.ContinueOnError)
	archDir := fs.String("archive", "", "experiment archive directory")
	filter := fs.String("filter", "", "selector, e.g. protocol=bulletprime,seed=1+2")
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "bulletctl ls: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	arch, code := openArchiveArg(*archDir, stderr)
	if code >= 0 {
		return code
	}
	f, err := lab.ParseFilter(*filter)
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return 2
	}
	metas, err := arch.List()
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return 1
	}
	fmt.Fprintf(stdout, "%-16s %-14s %-12s %6s %6s %-12s %10s %10s %9s\n",
		"id", "protocol", "network", "seed", "nodes", "scenario", "median_s", "worst_s", "finished")
	n := 0
	for _, m := range metas {
		if !f.Match(m) {
			continue
		}
		n++
		scen := m.ScenarioName
		if scen == "" {
			scen = "-"
		}
		fmt.Fprintf(stdout, "%-16s %-14s %-12s %6d %6d %-12s %10.1f %10.1f %9v\n",
			m.ID, m.Protocol, m.Network, m.Seed, m.Nodes, scen,
			m.Quantiles["median"], m.Quantiles["worst"], m.Finished)
	}
	fmt.Fprintf(stdout, "%d run(s)\n", n)
	return 0
}

// runShow prints one run's manifest and aggregates.
func runShow(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("show", flag.ContinueOnError)
	archDir := fs.String("archive", "", "experiment archive directory")
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: bulletctl show -archive DIR RUN_ID")
		return 2
	}
	arch, code := openArchiveArg(*archDir, stderr)
	if code >= 0 {
		return code
	}
	runs, code := selectRuns(arch, "id="+fs.Arg(0), stderr)
	if code >= 0 {
		return code
	}
	if len(runs) == 0 {
		fmt.Fprintf(stderr, "bulletctl: no run matches id %q\n", fs.Arg(0))
		return 1
	}
	if len(runs) > 1 {
		fmt.Fprintf(stderr, "bulletctl: id prefix %q is ambiguous (%d runs)\n", fs.Arg(0), len(runs))
		return 1
	}
	r := runs[0]
	m := r.Meta
	fmt.Fprintf(stdout, "run %s\n", m.ID)
	fmt.Fprintf(stdout, "  protocol:  %s\n", m.Protocol)
	fmt.Fprintf(stdout, "  network:   %s\n", m.Network)
	fmt.Fprintf(stdout, "  nodes:     %d\n", m.Nodes)
	fmt.Fprintf(stdout, "  file:      %.1f MB\n", m.FileBytes/1e6)
	fmt.Fprintf(stdout, "  seed:      %d\n", m.Seed)
	if m.ScenarioName != "" {
		fmt.Fprintf(stdout, "  scenario:  %s (digest %s)\n", m.ScenarioName, m.Scenario)
	}
	fmt.Fprintf(stdout, "  version:   %s\n", m.Version)
	fmt.Fprintf(stdout, "  created:   %s\n", m.CreatedAt)
	fmt.Fprintf(stdout, "  finished:  %v (elapsed %.1f s, control overhead %.2f%%)\n",
		m.Finished, m.Elapsed, 100*m.ControlOverhead)
	fmt.Fprintf(stdout, "  records:   %d completions, %d samples, %d annotations\n",
		len(r.CompletionTimes), len(r.Series), len(r.Annotations))
	if len(r.Series) > 0 {
		seriesSummary(stdout, r.Series)
	}
	names := make([]string, 0, len(m.Quantiles))
	for q := range m.Quantiles {
		names = append(names, q)
	}
	sort.Strings(names)
	fmt.Fprintf(stdout, "  completion-time quantiles (s):\n")
	for _, q := range names {
		fmt.Fprintf(stdout, "    %-8s %10.2f\n", q, m.Quantiles[q])
	}
	fmt.Fprintf(stdout, "  config:    %s\n", string(m.Config))
	return 0
}

// seriesSummary renders a recorded time-series as a compact per-metric
// digest — first/last/min/max per column — so an archived run is
// inspectable without re-exporting it. Streaming and testbed columns
// appear only when the series populates them.
func seriesSummary(w io.Writer, series []lab.Sample) {
	type col struct {
		name string
		get  func(lab.Sample) float64
	}
	cols := []col{
		{"completed", func(s lab.Sample) float64 { return float64(s.Completed) }},
		{"goodput_bps", func(s lab.Sample) float64 { return s.GoodputBps }},
		{"control_bytes", func(s lab.Sample) float64 { return s.ControlBytes }},
		{"data_bytes", func(s lab.Sample) float64 { return s.DataBytes }},
		{"duplicate_blocks", func(s lab.Sample) float64 { return float64(s.DuplicateBlocks) }},
		{"useful_bytes", func(s lab.Sample) float64 { return s.UsefulBytes }},
	}
	optional := []col{
		{"stream_lag_p50", func(s lab.Sample) float64 { return s.StreamLagP50 }},
		{"stream_lag_max", func(s lab.Sample) float64 { return s.StreamLagMax }},
		{"rebuffering", func(s lab.Sample) float64 { return float64(s.Rebuffering) }},
		{"rebuffer_events", func(s lab.Sample) float64 { return float64(s.RebufferEvents) }},
		{"stream_goodput_bps", func(s lab.Sample) float64 { return s.StreamGoodputBps }},
		{"testbed_rtt_p50", func(s lab.Sample) float64 { return s.TestbedRTTp50 }},
		{"testbed_rtt_max", func(s lab.Sample) float64 { return s.TestbedRTTMax }},
		{"testbed_unacked", func(s lab.Sample) float64 { return s.TestbedUnackedBytes }},
		{"testbed_retransmits", func(s lab.Sample) float64 { return float64(s.TestbedRetransmits) }},
		{"testbed_inj_drops", func(s lab.Sample) float64 { return float64(s.TestbedInjectedDrops) }},
	}
	for _, c := range optional {
		for _, s := range series {
			if c.get(s) != 0 {
				cols = append(cols, c)
				break
			}
		}
	}
	fmt.Fprintf(w, "  series (%d samples, t=%.1f..%.1f s):\n",
		len(series), series[0].Time, series[len(series)-1].Time)
	fmt.Fprintf(w, "    %-20s %12s %12s %12s %12s\n", "metric", "first", "last", "min", "max")
	for _, c := range cols {
		first, last := c.get(series[0]), c.get(series[len(series)-1])
		lo, hi := first, first
		for _, s := range series[1:] {
			v := c.get(s)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		fmt.Fprintf(w, "    %-20s %12.6g %12.6g %12.6g %12.6g\n", c.name, first, last, lo, hi)
	}
}

// runCompare diffs two selected run sets and prints the A/B report.
func runCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	archDir := fs.String("archive", "", "experiment archive directory")
	selA := fs.String("a", "", "selector for side A, e.g. protocol=bulletprime")
	selB := fs.String("b", "", "selector for side B, e.g. protocol=bittorrent")
	labelA := fs.String("label-a", "", "label for side A (default: the -a selector)")
	labelB := fs.String("label-b", "", "label for side B (default: the -b selector)")
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "bulletctl compare: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if *selA == "" || *selB == "" {
		fmt.Fprintln(stderr, "usage: bulletctl compare -archive DIR -a SELECTOR -b SELECTOR")
		return 2
	}
	arch, code := openArchiveArg(*archDir, stderr)
	if code >= 0 {
		return code
	}
	runsA, code := selectRuns(arch, *selA, stderr)
	if code >= 0 {
		return code
	}
	runsB, code := selectRuns(arch, *selB, stderr)
	if code >= 0 {
		return code
	}
	if len(runsA) == 0 || len(runsB) == 0 {
		fmt.Fprintf(stderr, "bulletctl: empty side (A matches %d run(s), B matches %d)\n",
			len(runsA), len(runsB))
		return 1
	}
	la, lb := *labelA, *labelB
	if la == "" {
		la = *selA
	}
	if lb == "" {
		lb = *selB
	}
	fmt.Fprint(stdout, lab.Compare(la, runsA, lb, runsB).Report())
	return 0
}

// runReport renders the whole (filtered) archive as a markdown report.
func runReport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	archDir := fs.String("archive", "", "experiment archive directory")
	filter := fs.String("filter", "", "selector restricting the reported runs")
	outFile := fs.String("o", "", "write the report to this file instead of stdout")
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "bulletctl report: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	arch, code := openArchiveArg(*archDir, stderr)
	if code >= 0 {
		return code
	}
	runs, code := selectRuns(arch, *filter, stderr)
	if code >= 0 {
		return code
	}
	report := lab.Report(runs)
	if *outFile != "" {
		if err := os.WriteFile(*outFile, []byte(report), 0o644); err != nil {
			fmt.Fprintln(stderr, "bulletctl:", err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote %s\n", *outFile)
		return 0
	}
	fmt.Fprint(stdout, report)
	return 0
}

// runGate checks the archive's per-group metric against a committed
// baseline: exit 0 within tolerance, 1 on regression (or missing group,
// or -write failure). -write captures the current archive as the new
// baseline instead of checking.
func runGate(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gate", flag.ContinueOnError)
	archDir := fs.String("archive", "", "experiment archive directory")
	baseFile := fs.String("baseline", "", "baseline JSON file (e.g. BENCH_BASELINE.json)")
	filter := fs.String("filter", "", "selector restricting the gated runs")
	metric := fs.String("metric", "median", "gated metric for -write: best, median, worst, mean, or pNN")
	tol := fs.Float64("tol", 0.15, "fractional tolerance for -write, e.g. 0.15 = +15%")
	write := fs.Bool("write", false, "capture the current archive as the new baseline and exit")
	stats := fs.Bool("stats", false, "with -write: also record per-run samples and arm the statistical gate")
	alpha := fs.Float64("alpha", 0.05, "with -write -stats: one-sided significance level for the rank test")
	minReps := fs.Int("minreps", 4, "with -write -stats: minimum per-side repetitions before the rank test applies")
	if code := parseFlags(fs, args, stderr); code >= 0 {
		return code
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "bulletctl gate: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if *baseFile == "" {
		fmt.Fprintln(stderr, "usage: bulletctl gate -archive DIR -baseline FILE [-write]")
		return 2
	}
	arch, code := openArchiveArg(*archDir, stderr)
	if code >= 0 {
		return code
	}
	runs, code := selectRuns(arch, *filter, stderr)
	if code >= 0 {
		return code
	}

	if !*write && (*stats || explicitFlag(fs, "alpha") || explicitFlag(fs, "minreps")) {
		fmt.Fprintln(stderr, "bulletctl gate: -stats/-alpha/-minreps require -write")
		return 2
	}
	if *write {
		base, err := lab.BaselineFrom(runs, *metric, *tol)
		if err != nil {
			fmt.Fprintln(stderr, "bulletctl:", err)
			return 1
		}
		if len(base.Entries) == 0 {
			fmt.Fprintln(stderr, "bulletctl: refusing to write an empty baseline (no completed runs)")
			return 1
		}
		if *stats {
			cfg := lab.StatsConfig{Alpha: *alpha, MinReps: *minReps}
			if err := base.CaptureStats(runs, cfg); err != nil {
				fmt.Fprintln(stderr, "bulletctl:", err)
				return 1
			}
		}
		if err := base.Save(*baseFile); err != nil {
			fmt.Fprintln(stderr, "bulletctl:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s: metric %s, tolerance %g, %d group(s)\n",
			*baseFile, base.Metric, base.Tolerance, len(base.Entries))
		if base.Stats != nil {
			fmt.Fprintf(stdout, "statistical gate armed: alpha %g, min reps %d, %d group(s) with samples\n",
				base.Stats.Alpha, base.Stats.MinReps, len(base.Samples))
		}
		return 0
	}

	base, err := lab.LoadBaseline(*baseFile)
	if err != nil {
		fmt.Fprintln(stderr, "bulletctl:", err)
		return 1
	}
	results, ok := base.Gate(runs)
	fmt.Fprint(stdout, lab.RenderGate(base.Metric, results, ok))
	if !ok {
		return 1
	}
	return 0
}

// explicitFlag reports whether the user set the named flag on the command
// line (as opposed to it holding its default).
func explicitFlag(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
