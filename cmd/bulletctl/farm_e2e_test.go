package main

// The farm's end-to-end acceptance test: a coordinator and two real
// worker PROCESSES over a shared archive, one worker SIGKILLed mid-run.
// The lease reissue plus content-hash dedupe must drive the sweep to
// completion with exactly one archive record per cell — no losses, no
// duplicates. Workers are separate processes (the test binary re-execing
// itself into dispatch), not goroutines, because the failure mode under
// test is a worker dying without unwinding anything.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bulletprime/internal/lab"
)

func TestMain(m *testing.M) {
	// Re-exec mode: behave as the bulletctl binary. The e2e test spawns
	// `<test-binary> farm work ...` with this variable set.
	if os.Getenv("BULLETCTL_DISPATCH") == "1" {
		os.Exit(dispatch(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// bulletctlCmd builds an exec.Cmd running this test binary as bulletctl.
func bulletctlCmd(args ...string) *exec.Cmd {
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "BULLETCTL_DISPATCH=1")
	return cmd
}

// syncBuffer is a goroutine-safe writer: exec copies a child's stderr
// into it from its own goroutine while the test polls String().
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestFarmEndToEndKillWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes and runs ~10s of experiments")
	}
	dir := t.TempDir()
	arch := filepath.Join(dir, "bench")
	// Cell geometry is chosen for wall time: at 100 nodes / 8 MB a cell
	// runs ~1s, so the kill below lands mid-cell rather than racing a
	// near-instant run to completion.
	specArgs := []string{
		"-archive", arch,
		"-nodes", "100", "-filemb", "8",
		"-protocols", "bulletprime", "-seeds", "2", "-reps", "2",
	}
	const cells = 2 * 2 // protocols x networks x seeds x reps

	// Coordinator with a short TTL so the killed worker's cell is
	// reissued quickly, and a hard wall bound so a wedged farm fails the
	// test instead of hanging it.
	coord := bulletctlCmd(append([]string{"farm", "coordinate",
		"-addr", "127.0.0.1:0", "-ttl", "2", "-wall", "120", "-linger", "2"},
		specArgs...)...)
	coordErr, err := coord.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	coordOut, err := coord.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	// The coordinator prints its resolved address; scrape it.
	base := ""
	scan := bufio.NewScanner(coordErr)
	for scan.Scan() {
		line := scan.Text()
		if i := strings.Index(line, "coordinating on "); i >= 0 {
			base = strings.TrimSpace(line[i+len("coordinating on "):])
			break
		}
	}
	if base == "" {
		t.Fatal("coordinator never announced its address")
	}
	go io.Copy(io.Discard, coordErr) // keep the pipe drained

	// Worker 1: the victim. The worker announces each claim on stderr
	// before running the cell; the moment the first claim lands, SIGKILL
	// it mid-cell — no cleanup, no unwind, exactly like a crashed machine.
	var victimLog syncBuffer
	victim := bulletctlCmd("farm", "work", "-coordinator", base,
		"-worker", "victim", "-archive", arch)
	victim.Stderr = &victimLog
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for !strings.Contains(victimLog.String(), ") claimed") {
		if time.Now().After(deadline) {
			t.Fatalf("victim never claimed a cell; victim log:\n%s", victimLog.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = victim.Wait()
	if strings.Contains(victimLog.String(), "done:") {
		t.Logf("note: victim settled a cell before dying; log:\n%s", victimLog.String())
	}

	// Worker 2 drives the rest of the sweep to completion, including the
	// victim's reissued cell.
	finisher := bulletctlCmd("farm", "work", "-coordinator", base,
		"-worker", "finisher", "-archive", arch)
	finisher.Stderr = io.Discard
	if err := finisher.Start(); err != nil {
		t.Fatal(err)
	}
	defer finisher.Process.Kill()

	outData, _ := io.ReadAll(coordOut)
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator failed: %v\n%s", err, outData)
	}
	summary := string(outData)
	if !strings.Contains(summary, fmt.Sprintf("cells %d: %d done, 0 pending, 0 leased, 0 failed", cells, cells)) {
		t.Fatalf("farm did not complete cleanly:\n%s", summary)
	}
	if !strings.Contains(summary, fmt.Sprintf("distinct archived runs: %d", cells)) {
		t.Fatalf("settled run ids are not %d distinct:\n%s", cells, summary)
	}

	// THE acceptance assertion: the shared archive holds exactly one
	// record per cell. A lost cell would leave fewer; a double-executed
	// cell that failed to dedupe would leave more.
	a, err := lab.Open(arch)
	if err != nil {
		t.Fatal(err)
	}
	metas, err := a.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != cells {
		t.Fatalf("archive holds %d records, want exactly %d (no losses, no duplicates)", len(metas), cells)
	}
	for _, m := range metas {
		if _, err := a.Load(m.ID); err != nil {
			t.Fatalf("record %s unreadable after the kill/resume cycle: %v", m.ID, err)
		}
	}
	_ = finisher.Wait()

	// Resuming the finished farm is a no-op: every cell is already
	// archived, no worker is needed, and the record count is unchanged.
	resume := bulletctlCmd(append([]string{"farm", "resume",
		"-addr", "127.0.0.1:0", "-wall", "30", "-linger", "0"}, specArgs...)...)
	resumeOut, err := resume.CombinedOutput()
	if err != nil {
		t.Fatalf("farm resume over a complete archive failed: %v\n%s", err, resumeOut)
	}
	if !strings.Contains(string(resumeOut), fmt.Sprintf("cells %d: %d done", cells, cells)) {
		t.Fatalf("resume did not report completion from the archive alone:\n%s", resumeOut)
	}
	metas, err = a.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != cells {
		t.Fatalf("resume duplicated records: %d, want %d", len(metas), cells)
	}
}

// TestFarmStatusOffline pins that `farm status -archive` needs no
// coordinator: it reconstructs progress from the archive and the spec.
func TestFarmStatusOffline(t *testing.T) {
	dir := t.TempDir()
	// An empty archive: everything pending.
	var out, errb strings.Builder
	code := dispatch([]string{"farm", "status", "-archive", dir,
		"-nodes", "8", "-filemb", "0.5", "-protocols", "bulletprime", "-seeds", "2"}, &out, &errb)
	if code != 0 {
		t.Fatalf("offline status exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "cells 2: 0 done, 2 pending") {
		t.Fatalf("offline status output:\n%s", out.String())
	}
}

// TestFarmUsageErrors pins the exit-code contract: bad verbs and missing
// required flags are usage errors (2), never silent successes.
func TestFarmUsageErrors(t *testing.T) {
	cases := [][]string{
		{"farm"},
		{"farm", "harvest"},
		{"farm", "coordinate"},            // missing -archive
		{"farm", "work", "-archive", "x"}, // missing -coordinator
		{"farm", "status"},                // neither source
		{"farm", "status", "-coordinator", "u", "-archive", "d"}, // both sources
	}
	for _, args := range cases {
		var out, errb strings.Builder
		if code := dispatch(args, &out, &errb); code != 2 {
			t.Fatalf("%v: exit %d, want 2", args, code)
		}
	}
}
