package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const perfBenchOutput = `goos: linux
BenchmarkAllocsPerEvent-2 	  200000	       151.8 ns/op	         0 allocs/event	      16 B/op	       0 allocs/op
BenchmarkScenarioTraceReplay500 	       3	 117482534 ns/op	11339544 B/op	   14136 allocs/op
PASS
`

// writePerfInputs returns paths to a bench-output file and a baseline
// written from it via the -write flow.
func writePerfInputs(t *testing.T) (inputPath, basePath string) {
	t.Helper()
	dir := t.TempDir()
	inputPath = filepath.Join(dir, "bench.txt")
	basePath = filepath.Join(dir, "BENCH_PERF.json")
	if err := os.WriteFile(inputPath, []byte(perfBenchOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := dispatch([]string{"perfgate", "-input", inputPath, "-baseline", basePath, "-write"},
		&out, &errb)
	if code != 0 {
		t.Fatalf("perfgate -write exit %d: %s", code, errb.String())
	}
	return inputPath, basePath
}

func TestPerfGateWriteThenPass(t *testing.T) {
	inputPath, basePath := writePerfInputs(t)
	var out, errb bytes.Buffer
	code := dispatch([]string{"perfgate", "-input", inputPath, "-baseline", basePath}, &out, &errb)
	if code != 0 {
		t.Fatalf("perfgate exit %d against own baseline: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "perf gate ok") {
		t.Fatalf("output missing pass banner:\n%s", out.String())
	}
}

func TestPerfGateInjectedRegression(t *testing.T) {
	_, basePath := writePerfInputs(t)
	dir := t.TempDir()
	regressed := strings.Replace(perfBenchOutput, "0 allocs/op", "3 allocs/op", 1)
	regPath := filepath.Join(dir, "regressed.txt")
	if err := os.WriteFile(regPath, []byte(regressed), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := dispatch([]string{"perfgate", "-input", regPath, "-baseline", basePath}, &out, &errb)
	if code != 1 {
		t.Fatalf("perfgate exit %d on alloc regression, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "ALLOCS REGRESSED") {
		t.Fatalf("output missing regression verdict:\n%s", out.String())
	}
}

func TestPerfGateWriteKeepsCeilings(t *testing.T) {
	inputPath, basePath := writePerfInputs(t)
	// Hand-set a ceiling on one entry, as BENCH_PERF.json does for the
	// sharded-vs-sequential wall-time bound, then regenerate via -write.
	data, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(string(data),
		`"ns_per_op": 117482534,`, `"ns_per_op": 117482534, "ns_ceiling": 2e8,`, 1)
	if edited == string(data) {
		t.Fatalf("baseline edit did not apply:\n%s", data)
	}
	if err := os.WriteFile(basePath, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := dispatch([]string{"perfgate", "-input", inputPath, "-baseline", basePath,
		"-write"}, &out, &errb); code != 0 {
		t.Fatalf("perfgate -write exit %d: %s", code, errb.String())
	}
	rewritten, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rewritten), `"ns_ceiling": 200000000`) {
		t.Fatalf("-write dropped the hand-set ns_ceiling:\n%s", rewritten)
	}
}

func TestPerfGateUsageErrors(t *testing.T) {
	cases := [][]string{
		{"perfgate"},                            // missing -baseline
		{"perfgate", "-baseline", "x", "extra"}, // stray argument
		{"perfgate", "-nope"},                   // unknown flag
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := dispatch(args, &out, &errb); code != 2 {
			t.Fatalf("%v exit %d, want 2", args, code)
		}
	}
}

func TestPerfGateMissingFiles(t *testing.T) {
	inputPath, _ := writePerfInputs(t)
	var out, errb bytes.Buffer
	if code := dispatch([]string{"perfgate", "-input", inputPath, "-baseline",
		filepath.Join(t.TempDir(), "absent.json")}, &out, &errb); code != 1 {
		t.Fatalf("missing baseline exit %d, want 1", code)
	}
	if code := dispatch([]string{"perfgate", "-input",
		filepath.Join(t.TempDir(), "absent.txt"), "-baseline", "x"}, &out, &errb); code != 1 {
		t.Fatalf("missing input exit %d, want 1", code)
	}
}
