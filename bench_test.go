// Benchmarks regenerating every figure of the paper's evaluation section
// at reduced scale (BenchScale: 25 nodes, ~5 MB), plus ablations of
// Bullet's design choices and micro-benchmarks of the substrates.
//
// Each figure bench reports the median and worst download time of the
// headline system as custom metrics (median_s, worst_s), so regressions in
// protocol behaviour — not just Go-level performance — show up in bench
// diffs. Run the full-scale reproduction with cmd/bulletctl -scale 1.
package bulletprime_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"bulletprime"
	"bulletprime/internal/core"
	"bulletprime/internal/fountain"
	"bulletprime/internal/harness"
	"bulletprime/internal/netcode"
	"bulletprime/internal/netem"
	"bulletprime/internal/proto"
	"bulletprime/internal/rsyncx"
	"bulletprime/internal/scenario"
	"bulletprime/internal/sim"
	"bulletprime/internal/trace"
)

const benchSeed = 42

// reportCDF attaches download-time metrics from the labelled series.
func reportCDF(b *testing.B, fig *trace.Figure, label string) {
	b.Helper()
	for _, s := range fig.Series {
		if s.Label != label || len(s.Points) == 0 {
			continue
		}
		b.ReportMetric(s.Points[len(s.Points)/2][0], "median_s")
		b.ReportMetric(s.Points[len(s.Points)-1][0], "worst_s")
		return
	}
}

func BenchmarkFigure04StaticComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := harness.Figure4(harness.BenchScale, benchSeed)
		reportCDF(b, fig, "BulletPrime")
	}
}

func BenchmarkFigure05DynamicComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := harness.Figure5(harness.BenchScale, benchSeed)
		reportCDF(b, fig, "BulletPrime")
	}
}

func BenchmarkFigure06RequestStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := harness.Figure6(harness.BenchScale, benchSeed)
		reportCDF(b, fig, "BulletPrime rarest-random request strategy")
	}
}

func BenchmarkFigure07PeerSetStatic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := harness.Figure7(harness.BenchScale, benchSeed)
		reportCDF(b, fig, "BulletPrime, dyn. #senders,#receivers")
	}
}

func BenchmarkFigure08PeerSetDynamic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := harness.Figure8(harness.BenchScale, benchSeed)
		reportCDF(b, fig, "BulletPrime, dyn. #senders,#receivers")
	}
}

func BenchmarkFigure09ConstrainedAccess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := harness.Figure9(harness.BenchScale, benchSeed)
		reportCDF(b, fig, "BulletPrime, dyn. #senders,#receivers")
	}
}

func BenchmarkFigure10OutstandingClean(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := harness.Figure10(harness.BenchScale, benchSeed)
		reportCDF(b, fig, "BulletPrime , dyn  outst")
	}
}

func BenchmarkFigure11OutstandingLossy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := harness.Figure11(harness.BenchScale, benchSeed)
		reportCDF(b, fig, "BulletPrime , dyn  outst")
	}
}

func BenchmarkFigure12OutstandingCascade(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := harness.Figure12(harness.BenchScale, benchSeed)
		reportCDF(b, fig, "BulletPrime , dyn  outst")
	}
}

func BenchmarkFigure13InterArrival(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.Figure13(harness.BenchScale, benchSeed)
		b.ReportMetric(res.LastBlocksOverage, "overage_s")
		b.ReportMetric(res.EncodingCost, "encode_cost_s")
	}
}

func BenchmarkFigure14PlanetLab(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := harness.Figure14(harness.BenchScale, benchSeed)
		reportCDF(b, fig, "BulletPrime")
	}
}

func BenchmarkFigure15Shotgun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := harness.Figure15(harness.BenchScale, benchSeed)
		reportCDF(b, fig, "Shotgun (Download + Update)")
	}
}

// --- Ablations (DESIGN.md §4) ----------------------------------------------

// ablationRun runs Bullet' on the lossy ModelNet mesh with a config hook.
func ablationRun(seed int64, mut func(*core.Config)) *harness.RunResult {
	sc := harness.BenchScale
	w := harness.Workload{FileBytes: sc.File * 100e6, BlockSize: 16 * 1024}
	n := 25
	return harness.RunOne("ablation", seed, harness.ModelNetTopology(n), nil,
		harness.KindBulletPrime, w, mut, 3600)
}

// BenchmarkAblationAlphaBeta compares the XCP-derived dynamic window
// against the naive fixed window of 5 (what BitTorrent hard-codes).
func BenchmarkAblationAlphaBeta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dyn := ablationRun(benchSeed, nil)
		fixed := ablationRun(benchSeed, func(c *core.Config) { c.StaticOutstanding = 5 })
		b.ReportMetric(dyn.CDF.Worst(), "dyn_worst_s")
		b.ReportMetric(fixed.CDF.Worst(), "fixed5_worst_s")
	}
}

// BenchmarkAblationStaticPeers quantifies adaptive peer-set sizing against
// the best and worst static sizes on the lossy mesh.
func BenchmarkAblationStaticPeers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dyn := ablationRun(benchSeed, nil)
		s6 := ablationRun(benchSeed, func(c *core.Config) { c.StaticPeers = 6 })
		s14 := ablationRun(benchSeed, func(c *core.Config) { c.StaticPeers = 14 })
		b.ReportMetric(dyn.CDF.Median(), "dyn_median_s")
		b.ReportMetric(s6.CDF.Median(), "s6_median_s")
		b.ReportMetric(s14.CDF.Median(), "s14_median_s")
	}
}

// BenchmarkAblationDiffClocking compares the paper's self-clocked diffs
// (§3.3.4) against fixed 5-second diff timers.
func BenchmarkAblationDiffClocking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		selfClocked := ablationRun(benchSeed, nil)
		periodic := ablationRun(benchSeed, func(c *core.Config) { c.PeriodicDiffs = 5 })
		b.ReportMetric(selfClocked.CDF.Median(), "selfclock_median_s")
		b.ReportMetric(periodic.CDF.Median(), "periodic_median_s")
		b.ReportMetric(selfClocked.ControlOverhead()*100, "selfclock_ctl_pct")
		b.ReportMetric(periodic.ControlOverhead()*100, "periodic_ctl_pct")
	}
}

// BenchmarkAblationRequestStrategy isolates first-encountered vs
// rarest-random block selection.
func BenchmarkAblationRequestStrategy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rr := ablationRun(benchSeed, func(c *core.Config) { c.Strategy = core.RarestRandom })
		fe := ablationRun(benchSeed, func(c *core.Config) { c.Strategy = core.FirstEncountered })
		b.ReportMetric(rr.CDF.Median(), "rarestrand_median_s")
		b.ReportMetric(fe.CDF.Median(), "first_median_s")
	}
}

// BenchmarkExtensionChurnResilience measures the mesh's failure tolerance
// (the paper's §1 motivation): median completion with and without 20% of
// control-tree leaves crashing mid-download.
func BenchmarkExtensionChurnResilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		calm := ablationRun(benchSeed, nil)
		b.ReportMetric(calm.CDF.Median(), "calm_median_s")

		// Churn run: rebuild the same scenario and fail leaves at t=15s.
		sc := harness.BenchScale
		w := harness.Workload{FileBytes: sc.File * 100e6, BlockSize: 16 * 1024}
		topo := harness.ModelNetTopology(25)(sim.NewRNG(benchSeed).Stream("topo"))
		rig := harness.NewRig(topo, benchSeed)
		sys := rig.BuildSystem(harness.KindBulletPrime, w, nil)
		sess := sys.(*core.Session)
		rig.Eng.Schedule(15, func() {
			failed := 0
			sess.Tree.Walk(func(id netem.NodeID) {
				if id != 0 && sess.Tree.IsLeaf(id) && failed < 5 {
					rig.RT.Node(id).Fail()
					failed++
				}
			})
		})
		sys.Start()
		rig.Eng.RunUntil(3600)
		churn := &trace.CDF{}
		for _, ts := range rig.Done {
			churn.Add(float64(ts))
		}
		b.ReportMetric(churn.Median(), "churn_median_s")
	}
}

// BenchmarkCodecComparison contrasts the two coding substrates on the same
// payload: LT (fountain) reception overhead vs network-coding rank overhead
// and their decode costs — the §2.2 vs §5-Avalanche trade-off.
func BenchmarkCodecComparison(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(5)).Read(data)
	const bs = 4096
	for i := 0; i < b.N; i++ {
		enc := fountain.NewEncoder(data, bs, 9)
		dec := fountain.NewDecoder(enc.K(), bs, 9)
		for id := 0; !dec.Complete(); id++ {
			dec.Add(id, enc.Block(id))
		}
		b.ReportMetric(dec.Overhead()*100, "fountain_ovh_pct")

		nenc := netcode.NewEncoder(data, bs)
		ndec := netcode.NewDecoder(nenc.K(), bs)
		rng := rand.New(rand.NewSource(9))
		for !ndec.Complete() {
			ndec.Add(nenc.Emit(rng))
		}
		b.ReportMetric(ndec.Overhead()*100, "netcode_ovh_pct")
	}
}

// --- Substrate micro-benchmarks ---------------------------------------------

func BenchmarkFountainEncode(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	enc := fountain.NewEncoder(data, 16*1024, 9)
	b.SetBytes(16 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = enc.Block(i)
	}
}

func BenchmarkFountainDecode(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(2)).Read(data)
	enc := fountain.NewEncoder(data, 16*1024, 9)
	// Pre-generate ample encoded blocks outside the timed loop.
	var blocks [][]byte
	for i := 0; i < enc.K()*3; i++ {
		blocks = append(blocks, enc.Block(i))
	}
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := fountain.NewDecoder(enc.K(), 16*1024, 9)
		for id, blk := range blocks {
			if dec.Complete() {
				break
			}
			dec.Add(id, blk)
		}
		if !dec.Complete() {
			b.Fatal("decode failed")
		}
	}
}

func BenchmarkRsyncDelta(b *testing.B) {
	old := make([]byte, 4<<20)
	rand.New(rand.NewSource(3)).Read(old)
	new := append([]byte(nil), old...)
	for i := 0; i < 16; i++ {
		new[i*200000] ^= 0xff
	}
	sig := rsyncx.ComputeSignature(old, 2048)
	b.SetBytes(4 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := rsyncx.ComputeDelta(sig, new)
		if len(d.Ops) == 0 {
			b.Fatal("empty delta")
		}
	}
}

func BenchmarkFairShareRecompute(b *testing.B) {
	eng := sim.NewEngine()
	n := 100
	topo := netem.NewTopology(n)
	topo.SetUniformAccess(netem.Mbps(6), netem.Mbps(6), netem.MS(1))
	rng := sim.NewRNG(4)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				topo.SetCoreBW(netem.NodeID(i), netem.NodeID(j), netem.Mbps(2))
				topo.SetCoreDelay(netem.NodeID(i), netem.NodeID(j), netem.MS(rng.Uniform(5, 200)))
				topo.SetCoreLoss(netem.NodeID(i), netem.NodeID(j), rng.Uniform(0, 0.03))
			}
		}
	}
	net := netem.New(eng, topo, rng.Stream("net"))
	// 1000 concurrent long transfers: the fair-share load of a full-scale
	// Bullet' run.
	for k := 0; k < 1000; k++ {
		src := netem.NodeID(rng.Intn(n))
		dst := netem.NodeID(rng.Intn(n))
		if src == dst {
			dst = (dst + 1) % netem.NodeID(n)
		}
		net.NewFlow(src, dst).Start(1e12, nil)
	}
	eng.RunUntil(0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.BandwidthChanged()
		eng.RunUntil(eng.Now() + 0.05)
	}
}

// fairShareDynamicScenario drives a churn-heavy dynamic workload on a
// clustered topology: n nodes in clusters of 10, ~1.5 concurrent transfers
// per node restarting on completion, and a bandwidth-halving/restore cycle
// hitting one cluster's links every 100 ms of virtual time. It returns the
// network so callers can read the recomputation counters.
func fairShareDynamicScenario(n int, full bool, horizon float64) (*sim.Engine, *netem.Network) {
	const clusterSize = 10
	eng := sim.NewEngine()
	rng := sim.NewRNG(7)
	topo := netem.NewTopology(n)
	topo.SetUniformAccess(netem.Mbps(6), netem.Mbps(6), netem.MS(1))
	for c := 0; c < n/clusterSize; c++ {
		base := c * clusterSize
		for i := 0; i < clusterSize; i++ {
			for j := 0; j < clusterSize; j++ {
				if i != j {
					topo.SetCoreBW(netem.NodeID(base+i), netem.NodeID(base+j), netem.Mbps(4))
					topo.SetCoreDelay(netem.NodeID(base+i), netem.NodeID(base+j), netem.MS(rng.Uniform(5, 50)))
				}
			}
		}
	}
	net := netem.New(eng, topo, rng.Stream("net"))
	net.FullRecompute = full

	// Per cluster: 15 flows between random distinct members, each a stream
	// of ~5 s transfers restarting on completion (the churn source).
	for c := 0; c < n/clusterSize; c++ {
		base := c * clusterSize
		for k := 0; k < 15; k++ {
			src := netem.NodeID(base + rng.Intn(clusterSize))
			dst := netem.NodeID(base + rng.Intn(clusterSize))
			if src == dst {
				dst = netem.NodeID(base + (int(dst)-base+1)%clusterSize)
			}
			f := net.NewFlow(src, dst)
			size := rng.Uniform(1e6, 4e6)
			var restart func()
			restart = func() { f.Start(size, restart) }
			restart()
		}
	}

	// Dynamics: every 100 ms halve or restore the intra-cluster links of one
	// cluster, reporting each change per-link as the harness dynamics do.
	dynRng := rng.Stream("dyn")
	halved := make([]bool, n/clusterSize)
	var tick func()
	tick = func() {
		c := dynRng.Intn(n / clusterSize)
		base := c * clusterSize
		factor := 0.5
		if halved[c] {
			factor = 2.0
		}
		halved[c] = !halved[c]
		for i := 0; i < clusterSize; i++ {
			for j := 0; j < clusterSize; j++ {
				if i != j {
					src, dst := netem.NodeID(base+i), netem.NodeID(base+j)
					topo.SetCoreBW(src, dst, topo.CoreBW(src, dst)*factor)
					net.LinkChanged(src, dst)
				}
			}
		}
		eng.After(0.1, tick)
	}
	eng.After(0.1, tick)

	eng.RunUntil(sim.Time(horizon))
	return eng, net
}

// benchFairShareDynamic reports the per-mode cost of the 30-virtual-second
// scenario: wall time per op plus the recomputed-flow-rate counters that the
// incremental scheme exists to shrink.
func benchFairShareDynamic(b *testing.B, n int, full bool) {
	var recomputed, skipped uint64
	for i := 0; i < b.N; i++ {
		_, net := fairShareDynamicScenario(n, full, 30)
		recomputed = net.FlowRatesRecomputed
		skipped = net.FlowRatesSkipped
	}
	b.ReportMetric(float64(recomputed), "rates_recomputed")
	b.ReportMetric(float64(skipped), "rates_skipped")
}

func BenchmarkFairShareIncremental100(b *testing.B)  { benchFairShareDynamic(b, 100, false) }
func BenchmarkFairShareFull100(b *testing.B)         { benchFairShareDynamic(b, 100, true) }
func BenchmarkFairShareIncremental500(b *testing.B)  { benchFairShareDynamic(b, 500, false) }
func BenchmarkFairShareFull500(b *testing.B)         { benchFairShareDynamic(b, 500, true) }
func BenchmarkFairShareIncremental1000(b *testing.B) { benchFairShareDynamic(b, 1000, false) }
func BenchmarkFairShareFull1000(b *testing.B)        { benchFairShareDynamic(b, 1000, true) }

// BenchmarkSweepParallel measures the parallel experiment driver against
// the same four seeds run back-to-back (BenchmarkSweepSequential).
func benchSweep(b *testing.B, parallel int) {
	sc := harness.TestScale
	w := harness.Workload{FileBytes: sc.File * 100e6, BlockSize: 16 * 1024}
	var specs []harness.SweepSpec
	for seed := int64(1); seed <= 4; seed++ {
		specs = append(specs, harness.SweepSpec{
			Label: "bench", Seed: seed, TopoFn: harness.ModelNetTopology(12),
			Kind: harness.KindBulletPrime, Workload: w, Deadline: 3600,
		})
	}
	for i := 0; i < b.N; i++ {
		res := harness.Sweep(specs, parallel)
		if harness.AggregateCDF(res).N() == 0 {
			b.Fatal("empty sweep")
		}
	}
}

func BenchmarkSweepSequential(b *testing.B) { benchSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B)   { benchSweep(b, 4) }

// --- Scenario-engine hot path ------------------------------------------------
//
// The scenario benchmarks drive the event-application + incremental-recompute
// path at 500-node scale on the clustered topology: TraceReplay500 applies a
// looped piecewise trace to a sampled 10% of the overlay's inbound core links
// every few virtual seconds; Churn500 crashes half the overlay's nodes (each
// holding live transfers) on exponential lifetimes. Both report the emulator's
// recomputation counters so scenario-tick cost regressions surface in bench
// diffs alongside wall time.

// scenarioBenchRig builds a 500-node clustered rig carrying ~1.5 restarting
// intra-cluster transfers per node, the fair-share load the scenario events
// must churn through.
func scenarioBenchRig(seed int64) *harness.Rig {
	return scenarioBenchRigN(seed, 500)
}

// scenarioBenchRigN is the same load at an arbitrary clustered scale.
func scenarioBenchRigN(seed int64, n int) *harness.Rig {
	const clusterSize = 25
	topo := harness.ClusteredTopology(n, clusterSize)(sim.NewRNG(seed).Stream("topo"))
	rig := harness.NewRig(topo, seed)
	rng := rig.Master.Stream("benchflows")
	for c := 0; c < n/clusterSize; c++ {
		base := c * clusterSize
		for k := 0; k < 3*clusterSize/2; k++ {
			src := netem.NodeID(base + rng.Intn(clusterSize))
			dst := netem.NodeID(base + rng.Intn(clusterSize))
			if src == dst {
				dst = netem.NodeID(base + (int(dst)-base+1)%clusterSize)
			}
			f := rig.Net.NewFlow(src, dst)
			size := rng.Uniform(1e6, 4e6)
			var restart func()
			restart = func() { f.Start(size, restart) }
			restart()
		}
	}
	return rig
}

func BenchmarkScenarioTraceReplay500(b *testing.B) {
	tr := &scenario.Trace{
		Times:    []float64{0, 3, 5, 9, 12},
		Values:   []float64{3000, 400, 3000, 1200, 3000},
		Duration: 15,
	}
	sc := scenario.New("bench-trace",
		scenario.TraceReplay(1, scenario.LinkSet{Frac: 0.1, Dir: "in"}, tr, true))
	var recomputes, rates uint64
	for i := 0; i < b.N; i++ {
		rig := scenarioBenchRig(7)
		harness.ScenarioDynamics(sc)(rig)
		rig.Eng.RunUntil(30)
		recomputes = rig.Net.Recomputes
		rates = rig.Net.FlowRatesRecomputed
	}
	b.ReportMetric(float64(recomputes), "recomputes")
	b.ReportMetric(float64(rates), "rates_recomputed")
}

func BenchmarkScenarioChurn500(b *testing.B) {
	sc := scenario.New("bench-churn",
		scenario.Churn(0, 0.5, scenario.Dist{Kind: "exp", Mean: 10}))
	var recomputes, rates uint64
	for i := 0; i < b.N; i++ {
		rig := scenarioBenchRig(8)
		// Protocol nodes with live connections, so every crash tears down
		// transport state and dirties fair-share components.
		for _, id := range rig.Members {
			rig.RT.NewNode(id)
		}
		connRng := rig.Master.Stream("benchconns")
		for k := 0; k < len(rig.Members); k++ {
			a := rig.Members[connRng.Intn(len(rig.Members))]
			c := rig.Members[connRng.Intn(len(rig.Members))]
			if a == c {
				c = rig.Members[(int(c)+1)%len(rig.Members)]
			}
			conn := rig.RT.Node(a).Dial(c)
			conn.Send(rig.RT.Node(a), proto.Message{Kind: 1, Size: 50e6})
		}
		harness.ScenarioDynamics(sc)(rig)
		rig.Eng.RunUntil(30)
		recomputes = rig.Net.Recomputes
		rates = rig.Net.FlowRatesRecomputed
	}
	b.ReportMetric(float64(recomputes), "recomputes")
	b.ReportMetric(float64(rates), "rates_recomputed")
}

// BenchmarkScenarioTraceReplay5000 is the Scale5000 cost probe: the same
// trace-replay dynamics as the 500-node benchmark at 10x the width (200
// clusters, ~7500 restarting transfers, a looping trace hitting 2% of
// inbound access links). One iteration includes building the dense
// 5000-node topology (~600 MB), which is why the benchmark reports
// wall_s_per_virtual explicitly: the event-core cost is the per-virtual-
// second slope, not the setup.
func BenchmarkScenarioTraceReplay5000(b *testing.B) {
	tr := &scenario.Trace{
		Times:    []float64{0, 3, 5, 9, 12},
		Values:   []float64{3000, 400, 3000, 1200, 3000},
		Duration: 15,
	}
	sc := scenario.New("bench-trace-5000",
		scenario.TraceReplay(1, scenario.LinkSet{Frac: 0.02, Dir: "in"}, tr, true))
	var executed uint64
	var wallPerVirtual float64
	for i := 0; i < b.N; i++ {
		rig := scenarioBenchRigN(7, 5000)
		harness.ScenarioDynamics(sc)(rig)
		start := time.Now()
		rig.Eng.RunUntil(10)
		wallPerVirtual = time.Since(start).Seconds() / 10
		executed = rig.Eng.Stats().Executed
	}
	b.ReportMetric(float64(executed), "events")
	b.ReportMetric(wallPerVirtual, "wall_s_per_virtual")
}

// --- Sharded engine (DESIGN.md §9) -------------------------------------------
//
// The sharded benchmarks run the Scale5000 sharded preset — 200 clusters of
// 25 on the O(N)-memory compact clustered topology, the scalefill reference
// workload with per-shard link churn — through the conservative shard group.
// The Serial variant drives all 8 shards cooperatively on one goroutine (the
// bit-exact oracle mode); the parallel variant runs one goroutine per shard.
// Both execute the identical event sequence, so their wall-time ratio is pure
// engine parallelism: in BENCH_PERF.json the parallel benchmark carries an
// ns_ceiling equal to the serial benchmark's recorded ns/op, which makes CI
// (GOMAXPROCS=4) assert that parallel execution is never slower than the
// sequential oracle.

// shardedBench5000 runs the Scale5000 sharded preset once per iteration with
// the given worker mode and reports the executed event count.
func shardedBench5000(b *testing.B, workers int) {
	var events uint64
	for i := 0; i < b.N; i++ {
		topo := harness.ClusteredTopologyCompact(5000, 25)(sim.NewRNG(7).Stream("topo"))
		rig := harness.NewShardedRig(topo, 7, 8)
		build, ok := harness.LookupShardedSystem("scalefill")
		if !ok {
			b.Fatal("scalefill not registered")
		}
		sys := build(harness.ShardBuildCtx{Rig: rig,
			Workload: harness.Workload{FileBytes: 1.5e6, BlockSize: 16 * 1024}})
		sys.Start()
		rig.Group.Run(12, workers, nil)
		if !sys.Complete() {
			b.Fatal("sharded preset did not complete by the 12 s horizon")
		}
		events = 0
		for _, s := range rig.Slots {
			events += s.Eng.Stats().Executed
		}
	}
	b.ReportMetric(float64(events), "events")
}

func BenchmarkShardedTraceReplay5000(b *testing.B)       { shardedBench5000(b, 0) }
func BenchmarkShardedTraceReplay5000Serial(b *testing.B) { shardedBench5000(b, 1) }

// --- Observer streaming overhead ----------------------------------------------

// benchFlowsSystem is a registered façade protocol that reproduces the
// scenario bench rig's load (restarting intra-cluster transfers) without a
// real dissemination session, so the observer's streaming path can be
// costed at 500-node scale inside bulletprime.New/Run.
type benchFlowsSystem struct {
	rig *harness.Rig
}

func (s *benchFlowsSystem) Start() {
	const clusterSize = 25
	n := len(s.rig.Members)
	rng := s.rig.Master.Stream("benchflows")
	for c := 0; c < n/clusterSize; c++ {
		base := c * clusterSize
		for k := 0; k < 3*clusterSize/2; k++ {
			src := netem.NodeID(base + rng.Intn(clusterSize))
			dst := netem.NodeID(base + rng.Intn(clusterSize))
			if src == dst {
				dst = netem.NodeID(base + (int(dst)-base+1)%clusterSize)
			}
			f := s.rig.Net.NewFlow(src, dst)
			size := rng.Uniform(1e6, 4e6)
			var restart func()
			restart = func() { f.Start(size, restart) }
			restart()
		}
	}
}

func (s *benchFlowsSystem) Complete() bool   { return false } // runs to the deadline
func (s *benchFlowsSystem) DoneAt() sim.Time { return 0 }

func init() {
	bulletprime.RegisterProtocol("bench-flows", func(ctx bulletprime.BuildContext) bulletprime.System {
		return &benchFlowsSystem{rig: ctx.Rig}
	})
}

// BenchmarkObserverOverhead costs the session API's streaming path against
// the unobserved one-shot Run on the 500-node clustered scenario
// benchmark: same topology, same looping trace replay, 30 virtual seconds,
// with the observed arm sampling every virtual second (per-node progress
// included) through a subscribed channel. It reports the wall-time ratio
// as overhead_ratio; the sampling hooks are read-only, so the target is
// ~1.05 (within ~5%), asserted here with headroom for CI timer noise.
func BenchmarkObserverOverhead(b *testing.B) {
	tr := &scenario.Trace{
		Times:    []float64{0, 3, 5, 9, 12},
		Values:   []float64{3000, 400, 3000, 1200, 3000},
		Duration: 15,
	}
	sc := scenario.New("bench-observer",
		scenario.TraceReplay(1, scenario.LinkSet{Frac: 0.1, Dir: "in"}, tr, true))
	cfg := bulletprime.RunConfig{
		Protocol:  "bench-flows",
		Network:   bulletprime.NetworkClustered,
		Nodes:     500,
		FileBytes: 1, // unused by bench-flows; must be positive
		Scenario:  (*bulletprime.Scenario)(sc),
		Seed:      7,
		Deadline:  30,
	}
	run := func(observe bool) time.Duration {
		start := time.Now()
		if !observe {
			if _, err := bulletprime.Run(cfg); err != nil {
				b.Fatal(err)
			}
			return time.Since(start)
		}
		exp, err := bulletprime.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		obs, err := exp.Subscribe(bulletprime.ObserverConfig{Every: 1, PerNode: true})
		if err != nil {
			b.Fatal(err)
		}
		samples := 0
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for range obs.Samples() {
				samples++
			}
		}()
		if _, err := exp.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		<-drained
		if samples == 0 {
			b.Fatal("observed run produced no samples")
		}
		return time.Since(start)
	}
	minBase, minObs := time.Duration(0), time.Duration(0)
	for i := 0; i < b.N; i++ {
		// Alternate arms twice per iteration and keep the minima: the
		// robust wall-time estimate under scheduler noise.
		for pair := 0; pair < 2; pair++ {
			base := run(false)
			obs := run(true)
			if minBase == 0 || base < minBase {
				minBase = base
			}
			if minObs == 0 || obs < minObs {
				minObs = obs
			}
		}
	}
	ratio := float64(minObs) / float64(minBase)
	b.ReportMetric(ratio, "overhead_ratio")
	// The ceiling is deliberately loose: at -benchtime=1x on a shared CI
	// runner, wall-clock minima over two pairs still carry scheduler
	// noise. 1.5 catches a hook-cost regression an order above the ~1.04
	// this benchmark measures locally without turning noise into red CI.
	if ratio > 1.5 {
		b.Errorf("observer overhead ratio %.3f exceeds the 1.5 smoke ceiling (target ~1.05)", ratio)
	}
}

// BenchmarkObserverOverheadSharded costs the sharded engine's sampling path
// at Scale5000: the scalefill preset (200 compact clusters of 25, 8 shards,
// per-shard link churn) run unobserved in one Group.Run versus observed —
// horizon-stepped every virtual second with a subscribed channel draining
// the merged samples. The barrier walk re-partitions the conservative
// windows without reordering events, so the wall-time ratio is pure
// sampling overhead; the same 1.5 smoke ceiling applies.
func BenchmarkObserverOverheadSharded(b *testing.B) {
	cfg := bulletprime.RunConfig{
		Protocol:  bulletprime.ProtocolScalefill,
		Network:   bulletprime.NetworkClusteredCompact,
		Nodes:     5000,
		FileBytes: 1.5e6,
		Seed:      7,
		Deadline:  12,
		Engine:    bulletprime.EngineSharded,
		Shards:    8,
	}
	run := func(observe bool) time.Duration {
		start := time.Now()
		if !observe {
			if _, err := bulletprime.Run(cfg); err != nil {
				b.Fatal(err)
			}
			return time.Since(start)
		}
		exp, err := bulletprime.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		obs, err := exp.Subscribe(bulletprime.ObserverConfig{Every: 1})
		if err != nil {
			b.Fatal(err)
		}
		samples := 0
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for range obs.Samples() {
				samples++
			}
		}()
		if _, err := exp.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		<-drained
		if samples == 0 {
			b.Fatal("observed sharded run produced no samples")
		}
		return time.Since(start)
	}
	minBase, minObs := time.Duration(0), time.Duration(0)
	for i := 0; i < b.N; i++ {
		for pair := 0; pair < 2; pair++ {
			base := run(false)
			obs := run(true)
			if minBase == 0 || base < minBase {
				minBase = base
			}
			if minObs == 0 || obs < minObs {
				minObs = obs
			}
		}
	}
	ratio := float64(minObs) / float64(minBase)
	b.ReportMetric(ratio, "overhead_ratio")
	if ratio > 1.5 {
		b.Errorf("sharded observer overhead ratio %.3f exceeds the 1.5 smoke ceiling", ratio)
	}
}

// --- Live-streaming workload (DESIGN.md §11) ---------------------------------

// BenchmarkStream500 costs the streaming subsystem at 500-node scale: a
// 64 KiB/s live source on the lossless ModelNet mesh for 30 virtual seconds,
// with a drain window long enough for every viewer to finish playback, and
// the playout-buffer tracker accounting all 499 of them. It reports
// viewer-experience metrics alongside wall time, so stream regressions (lag
// growth, rebuffer storms) surface in bench diffs, and it feeds the perf
// gate through BENCH_PERF.json.
func BenchmarkStream500(b *testing.B) {
	var lagP50, rebuffers float64
	for i := 0; i < b.N; i++ {
		res := harness.RunSpec(harness.SweepSpec{
			Label:    "stream500",
			Seed:     benchSeed,
			TopoFn:   harness.LosslessModelNetTopology(500),
			Kind:     harness.KindBulletPrime,
			Workload: harness.Workload{BlockSize: 16 * 1024},
			Deadline: 120,
			Stream:   &harness.StreamSpec{BitrateBps: 64 * 1024, Duration: 30, Drain: 45},
		})
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		if res.Stream == nil || res.Stream.Live == 0 {
			b.Fatal("stream run reported no live viewers")
		}
		lagP50 = res.Stream.LagP50
		rebuffers = float64(res.Stream.Rebuffers)
	}
	b.ReportMetric(lagP50, "lag_p50_s")
	b.ReportMetric(rebuffers, "rebuffers")
}

func BenchmarkBlockStoreDiff(b *testing.B) {
	s := proto.NewBlockStore(6400)
	for i := 0; i < 6400; i += 2 {
		s.Add(i, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids, _ := s.ArrivalsSince(0)
		if len(ids) != 3200 {
			b.Fatal("wrong diff")
		}
	}
}

func BenchmarkSummaryUsefulTo(b *testing.B) {
	full := proto.NewBlockStore(6400)
	for i := 0; i < 6400; i++ {
		full.Add(i, 0)
	}
	half := proto.NewBlockStore(6400)
	for i := 0; i < 3200; i++ {
		half.Add(i*2, 0)
	}
	sum := proto.NewSummary(full)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sum.UsefulTo(half, 64) <= 0 {
			b.Fatal("useless")
		}
	}
}
