package bulletprime_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"bulletprime"
	"bulletprime/internal/harness"
	"bulletprime/internal/netem"
	"bulletprime/internal/sim"
)

// goldenRuns pins Run's per-node completion times, captured from the
// pre-session-API implementation (the buildSpec switch statements), so the
// registry + session redesign is provably bit-identical for equal seeds.
var goldenRuns = []struct {
	cfg      bulletprime.RunConfig
	overhead float64
	times    map[int]float64
}{
	{
		cfg:      bulletprime.RunConfig{Nodes: 10, FileBytes: 1 << 20, Seed: 1},
		overhead: 0.036867077379345331,
		times: map[int]float64{
			1: 12.642215794746878, 2: 12.789660605820695, 3: 12.012932521170322,
			4: 12.130504002713066, 5: 11.070072039402357, 6: 12.385343710848243,
			7: 11.627424747591888, 8: 12.834874323735965, 9: 11.376074303948585,
		},
	},
	{
		cfg: bulletprime.RunConfig{Nodes: 12, FileBytes: 1 << 20, Seed: 3,
			Protocol: bulletprime.ProtocolBitTorrent},
		overhead: 0.0073983908342408044,
		times: map[int]float64{
			1: 23.569697495116507, 2: 24.0245737363656, 3: 23.478300133290254,
			4: 49.55160054880028, 5: 76.443139550543677, 6: 34.43761598366946,
			7: 45.79373124602759, 8: 37.718445488641933, 9: 45.724132212853092,
			10: 51.078683310652011, 11: 39.715232717764152,
		},
	},
	{
		cfg: bulletprime.RunConfig{Nodes: 10, FileBytes: 1 << 20, Seed: 5,
			Network: bulletprime.NetworkConstrained, Protocol: bulletprime.ProtocolSplitStream},
		overhead: 0,
		times: map[int]float64{
			1: 13.128803330715998, 2: 13.128803557185334, 3: 13.128803096746767,
			4: 13.128803253389851, 5: 13.12880268575994, 6: 13.128802748457996,
			7: 13.125231418581873, 8: 13.128802996059669, 9: 13.128802703526585,
		},
	},
	{
		cfg: bulletprime.RunConfig{Nodes: 14, FileBytes: 1 << 20, Seed: 2,
			DynamicBandwidth: true, Protocol: bulletprime.ProtocolBullet, Deadline: 1800},
		overhead: 0.01235856917686508,
		times: map[int]float64{
			1: 9.9754175313513169, 2: 10.153397664103366, 3: 12.930091812050515,
			4: 9.8767955939868202, 5: 10.979322972625848, 6: 11.704201591240215,
			7: 10.342137791493002, 8: 11.574820335600569, 9: 10.652642137182243,
			10: 12.000119490895512, 11: 10.607904963796299, 12: 10.167237621827422,
			13: 10.821067321772315,
		},
	},
}

// TestRunGoldenEquivalence is the redesign's compat pin: Run must produce
// bit-identical CompletionTimes to the pre-redesign façade.
func TestRunGoldenEquivalence(t *testing.T) {
	for gi, g := range goldenRuns {
		res, err := bulletprime.Run(g.cfg)
		if err != nil {
			t.Fatalf("golden %d: %v", gi, err)
		}
		if !res.Finished {
			t.Fatalf("golden %d did not finish", gi)
		}
		if res.ControlOverhead != g.overhead {
			t.Fatalf("golden %d: overhead %.17g, want %.17g", gi, res.ControlOverhead, g.overhead)
		}
		if len(res.CompletionTimes) != len(g.times) {
			t.Fatalf("golden %d: %d completions, want %d", gi, len(res.CompletionTimes), len(g.times))
		}
		for id, want := range g.times {
			if got := res.CompletionTimes[id]; got != want {
				t.Fatalf("golden %d node %d: %.17g, want %.17g", gi, id, got, want)
			}
		}
	}
}

// TestObservedSessionBitIdentical pins the observer contract: a session
// with a subscribed, per-node, fine-grained observer produces exactly the
// completion times of the unobserved one-shot Run.
func TestObservedSessionBitIdentical(t *testing.T) {
	cfg := bulletprime.RunConfig{Nodes: 10, FileBytes: 1 << 20, Seed: 1, SampleEvery: 0.5}
	plain, err := bulletprime.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := bulletprime.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := exp.Subscribe(bulletprime.ObserverConfig{Every: 0.5, PerNode: true})
	if err != nil {
		t.Fatal(err)
	}
	drained := make(chan int)
	go func() {
		n := 0
		for range obs.Samples() {
			n++
		}
		drained <- n
	}()
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n := <-drained; n == 0 {
		t.Fatal("observer saw no samples")
	}
	if len(res.CompletionTimes) != len(plain.CompletionTimes) {
		t.Fatalf("observed %d completions, unobserved %d",
			len(res.CompletionTimes), len(plain.CompletionTimes))
	}
	for id, want := range plain.CompletionTimes {
		if got := res.CompletionTimes[id]; got != want {
			t.Fatalf("node %d: observed %.17g, unobserved %.17g", id, got, want)
		}
	}
	if len(res.Series) == 0 {
		t.Fatal("observed session recorded no time-series")
	}
	last := res.Series[len(res.Series)-1]
	if last.Completed != len(res.CompletionTimes) {
		t.Fatalf("final sample Completed = %d, want %d", last.Completed, len(res.CompletionTimes))
	}
	if last.DataBytes <= 0 || last.ControlBytes <= 0 {
		t.Fatalf("final sample byte counters implausible: data %v control %v",
			last.DataBytes, last.ControlBytes)
	}
	for i := 1; i < len(res.Series); i++ {
		if res.Series[i].Time <= res.Series[i-1].Time {
			t.Fatal("series timestamps not strictly increasing")
		}
		if res.Series[i].Completed < res.Series[i-1].Completed {
			t.Fatal("completed count decreased")
		}
	}
}

// TestSessionCancelMidFlight is the acceptance pin for context-based
// cancellation: an observer-driven run cancelled mid-flight returns a
// partial time-series and partial completions instead of blocking to the
// deadline.
func TestSessionCancelMidFlight(t *testing.T) {
	exp, err := bulletprime.New(bulletprime.RunConfig{
		Nodes: 10, FileBytes: 16 << 20, Seed: 4, SampleEvery: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	obs, err := exp.Subscribe(bulletprime.ObserverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := exp.Start(ctx); err != nil {
		t.Fatal(err)
	}
	seen := 0
	for range obs.Samples() {
		seen++
		if seen == 4 {
			cancel()
		}
	}
	res, err := exp.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled {
		t.Fatal("result not marked Cancelled")
	}
	if res.Finished {
		t.Fatal("cancelled run claims Finished")
	}
	if len(res.Series) == 0 {
		t.Fatal("cancelled run returned no partial time-series")
	}
	if res.Elapsed <= 0 || res.Elapsed >= 3600 {
		t.Fatalf("cancelled run elapsed %v, want mid-flight", res.Elapsed)
	}
	// A 16 MB file on a 6 Mbps access link cannot finish by ~t=2.5s, so the
	// partial completion set must be partial indeed.
	if len(res.CompletionTimes) == 9 {
		t.Fatal("cancelled run reports a full completion set")
	}
}

// oracleSystem is the third-party protocol for the registry round-trip
// test: every receiver "completes" at a deterministic offset without
// moving any bytes.
type oracleSystem struct {
	rig        *harness.Rig
	members    []netem.NodeID
	onComplete func(netem.NodeID)
	done       int
	doneAt     sim.Time
}

func (s *oracleSystem) Start() {
	for i, id := range s.members[1:] {
		id := id
		s.rig.Eng.After(float64(i+1), func() {
			s.done++
			s.onComplete(id)
			if s.Complete() {
				s.doneAt = s.rig.Eng.Now()
			}
		})
	}
}

func (s *oracleSystem) Complete() bool   { return s.done >= len(s.members)-1 }
func (s *oracleSystem) DoneAt() sim.Time { return s.doneAt }

func init() {
	bulletprime.RegisterProtocol("test-oracle", func(ctx bulletprime.BuildContext) bulletprime.System {
		return &oracleSystem{rig: ctx.Rig, members: ctx.Members, onComplete: ctx.OnComplete}
	})
	bulletprime.RegisterNetwork("test-uniform", func(nodes int) bulletprime.TopologyFn {
		return func(rng *sim.RNG) *netem.Topology {
			cfg := netem.ModelNetConfig{
				N:           nodes,
				AccessBW:    netem.Mbps(4),
				AccessDelay: netem.MS(2),
				CoreBW:      netem.Mbps(5),
				CoreDelayLo: netem.MS(5),
				CoreDelayHi: netem.MS(10),
			}
			return cfg.Build(rng)
		}
	})
}

// TestThirdPartyRegistryRoundTrip is the acceptance pin for the open
// registries: a protocol and a network registered from outside the package
// run through New without any internal switch knowing about them.
func TestThirdPartyRegistryRoundTrip(t *testing.T) {
	exp, err := bulletprime.New(bulletprime.RunConfig{
		Protocol:  "test-oracle",
		Network:   "test-uniform",
		Nodes:     10,
		FileBytes: 1 << 20,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("oracle run did not finish")
	}
	if len(res.CompletionTimes) != 9 {
		t.Fatalf("%d completions, want 9", len(res.CompletionTimes))
	}
	// The oracle completes receiver i at t=i+1 exactly.
	if res.Worst() != 9 || res.Best() != 1 {
		t.Fatalf("oracle times best %v worst %v, want 1 and 9", res.Best(), res.Worst())
	}
	// A real protocol must also run on the registered third-party network.
	res2, err := bulletprime.Run(bulletprime.RunConfig{
		Network: "test-uniform", Nodes: 10, FileBytes: 1 << 20, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Finished {
		t.Fatal("bulletprime on third-party network did not finish")
	}
	found := false
	for _, p := range bulletprime.Protocols() {
		if p == "test-oracle" {
			found = true
		}
	}
	if !found {
		t.Fatal("Protocols() does not list the registered protocol")
	}
}

// TestSweepStreamPerCellProgress exercises the streaming sweep: results
// arrive per cell with correct indices, the observe callback can subscribe
// to individual cells, and the reassembled results match the blocking
// Sweep wrapper bit-for-bit.
func TestSweepStreamPerCellProgress(t *testing.T) {
	cfg := bulletprime.SweepConfig{
		Base:  bulletprime.RunConfig{Nodes: 10, FileBytes: 1 << 20, Parallel: 2},
		Seeds: []int64{1, 2},
		Protocols: []bulletprime.Protocol{
			bulletprime.ProtocolBulletPrime, bulletprime.ProtocolBitTorrent,
		},
	}
	sampleCount := make(chan int, 16)
	ch, err := bulletprime.SweepStream(context.Background(), cfg,
		func(cell bulletprime.SweepCell, exp *bulletprime.Experiment) {
			obs, err := exp.Subscribe(bulletprime.ObserverConfig{Every: 2})
			if err != nil {
				t.Error(err)
				return
			}
			go func() {
				n := 0
				for range obs.Samples() {
					n++
				}
				sampleCount <- n
			}()
		})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]*bulletprime.SweepRun, 4)
	n := 0
	for r := range ch {
		r := r
		if r.Index < 0 || r.Index >= 4 || got[r.Index] != nil {
			t.Fatalf("bad or duplicate index %d", r.Index)
		}
		got[r.Index] = &r
		n++
	}
	if n != 4 {
		t.Fatalf("streamed %d cells, want 4", n)
	}
	for i := 0; i < 4; i++ {
		if c := <-sampleCount; c == 0 {
			t.Fatal("a cell's observer saw no samples")
		}
	}
	plain, err := bulletprime.Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range plain {
		if r.Protocol != got[i].Protocol || r.Seed != got[i].Seed {
			t.Fatalf("cell %d identity mismatch", i)
		}
		if len(r.Result.CompletionTimes) != len(got[i].Result.CompletionTimes) {
			t.Fatalf("cell %d completion counts differ", i)
		}
		for id, at := range r.Result.CompletionTimes {
			if got[i].Result.CompletionTimes[id] != at {
				t.Fatalf("cell %d node %d: stream %v, sweep %v",
					i, id, got[i].Result.CompletionTimes[id], at)
			}
		}
	}
}

// TestSessionStateErrors pins the session lifecycle contract.
func TestSessionStateErrors(t *testing.T) {
	cfg := bulletprime.RunConfig{Nodes: 10, FileBytes: 1 << 20, Seed: 1}
	exp, err := bulletprime.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Wait(); err == nil {
		t.Fatal("Wait before Start succeeded")
	}
	if err := exp.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := exp.Start(context.Background()); err == nil {
		t.Fatal("double Start succeeded")
	}
	if _, err := exp.Subscribe(bulletprime.ObserverConfig{}); err == nil {
		t.Fatal("Subscribe after Start succeeded")
	}
	if _, err := exp.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelValidation pins the satellite fix: negative Parallel is a
// loud error everywhere instead of being silently ignored by single runs.
func TestParallelValidation(t *testing.T) {
	bad := bulletprime.RunConfig{Nodes: 10, FileBytes: 1 << 20, Parallel: -1}
	if _, err := bulletprime.Run(bad); err == nil {
		t.Fatal("Run accepted negative Parallel")
	}
	if _, err := bulletprime.New(bad); err == nil {
		t.Fatal("New accepted negative Parallel")
	}
	if _, err := bulletprime.Sweep(bulletprime.SweepConfig{Base: bad}); err == nil {
		t.Fatal("Sweep accepted negative Parallel")
	}
}

// TestSampleEveryDisablesSeries pins the public sampling opt-out: a
// negative SampleEvery session records no Result.Series, while subscribed
// observers still stream.
func TestSampleEveryDisablesSeries(t *testing.T) {
	cfg := bulletprime.RunConfig{Nodes: 10, FileBytes: 1 << 20, Seed: 1, SampleEvery: -1}
	exp, err := bulletprime.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := exp.Subscribe(bulletprime.ObserverConfig{Every: 2})
	if err != nil {
		t.Fatal(err)
	}
	drained := make(chan int)
	go func() {
		n := 0
		for range obs.Samples() {
			n++
		}
		drained <- n
	}()
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n := <-drained; n == 0 {
		t.Fatal("observer saw no samples with SampleEvery < 0")
	}
	if len(res.Series) != 0 {
		t.Fatalf("SampleEvery < 0 still recorded %d series samples", len(res.Series))
	}
	if !res.Finished {
		t.Fatal("run did not finish")
	}

	// Without observers, a negative-SampleEvery session records nothing
	// and matches the unobserved wrapper bit-for-bit.
	exp2, err := bulletprime.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := exp2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Series) != 0 {
		t.Fatal("unobserved disabled session recorded a series")
	}
	plain, err := bulletprime.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range plain.CompletionTimes {
		if res2.CompletionTimes[id] != want {
			t.Fatalf("node %d: %v vs wrapper %v", id, res2.CompletionTimes[id], want)
		}
	}
}

// TestLoadScenarioErrorPaths covers the façade loader's failure modes:
// missing file, malformed JSON, and a trace_file reference that dangles.
func TestLoadScenarioErrorPaths(t *testing.T) {
	if _, err := bulletprime.LoadScenario(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file loaded")
	}

	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name": "x", "events": [`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := bulletprime.LoadScenario(bad); err == nil {
		t.Fatal("malformed JSON loaded")
	}

	unknown := filepath.Join(dir, "unknown.json")
	if err := os.WriteFile(unknown, []byte(`{"name": "x", "events": [{"kind": "setbw", "bogus_key": 1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := bulletprime.LoadScenario(unknown); err == nil {
		t.Fatal("unknown event field loaded")
	}

	dangling := filepath.Join(dir, "dangling.json")
	doc := `{"name": "x", "events": [
		{"kind": "trace", "links": {"frac": 0.5}, "trace_file": "no-such-trace.json"}
	]}`
	if err := os.WriteFile(dangling, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := bulletprime.LoadScenario(dangling); err == nil {
		t.Fatal("dangling trace_file reference loaded")
	}

	// The healthy path still works, with the trace resolved relative to
	// the scenario file's directory.
	tracePath := filepath.Join(dir, "t.trace")
	if err := os.WriteFile(tracePath, []byte("duration 10\n0 1000\n5 500\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	good := filepath.Join(dir, "good.json")
	doc = `{"name": "x", "events": [
		{"kind": "trace", "links": {"frac": 0.5}, "trace_file": "t.trace"}
	]}`
	if err := os.WriteFile(good, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	sc, err := bulletprime.LoadScenario(good)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Compile(10); err != nil {
		t.Fatal(err)
	}
}

// TestScenarioAnnotationsObserved checks that scenario events surface as
// timestamped annotations on the session's result and stream.
func TestScenarioAnnotationsObserved(t *testing.T) {
	sc, err := bulletprime.LoadScenario("internal/scenario/testdata/mixed.json")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := bulletprime.New(bulletprime.RunConfig{
		Nodes: 14, FileBytes: 1 << 20, Scenario: sc, Seed: 1, Deadline: 600,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Annotations) == 0 {
		t.Fatal("scenario run produced no annotations")
	}
	for i, a := range res.Annotations {
		if a.Text == "" {
			t.Fatalf("annotation %d has no text", i)
		}
		if i > 0 && a.At < res.Annotations[i-1].At {
			t.Fatal("annotations out of time order")
		}
	}
	// Flash-crowd wave starts are annotated by the harness.
	foundWave := false
	for _, a := range res.Annotations {
		if len(a.Text) >= 11 && a.Text[:11] == "flash-crowd" {
			foundWave = true
		}
	}
	if !foundWave {
		t.Fatal("no flash-crowd wave annotation")
	}
}

// TestSweepReps pins the repetition fan-out through the facade: Reps
// multiplies the cross product with RepSeed-derived seeds, repetition 0
// is bit-identical to the unrepeated sweep, and higher repetitions are
// genuinely different runs.
func TestSweepReps(t *testing.T) {
	base := bulletprime.SweepConfig{
		Base:  bulletprime.RunConfig{Nodes: 10, FileBytes: 1 << 20, Parallel: 2},
		Seeds: []int64{1},
	}
	plain, err := bulletprime.Sweep(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 1 {
		t.Fatalf("unrepeated sweep: %d cells", len(plain))
	}

	repped := base
	repped.Reps = 3
	runs, err := bulletprime.Sweep(repped)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("reps=3 sweep: %d cells, want 3", len(runs))
	}
	for i, r := range runs {
		if r.Rep != i || r.Seed != 1 {
			t.Fatalf("cell %d: rep %d seed %d, want rep %d seed 1 (base seed, not derived)", i, r.Rep, r.Seed, i)
		}
	}
	// Repetition 0 is the unrepeated run, bit for bit.
	if len(runs[0].Result.CompletionTimes) != len(plain[0].Result.CompletionTimes) {
		t.Fatal("rep 0 completion count differs from the unrepeated sweep")
	}
	for id, at := range plain[0].Result.CompletionTimes {
		if runs[0].Result.CompletionTimes[id] != at {
			t.Fatalf("rep 0 node %d: %v vs unrepeated %v", id, runs[0].Result.CompletionTimes[id], at)
		}
	}
	// Higher repetitions ran under different derived seeds.
	if runs[1].Result.Median() == runs[0].Result.Median() && runs[2].Result.Median() == runs[0].Result.Median() {
		t.Fatal("every repetition produced identical medians; derived seeds not applied")
	}
}
