package bulletprime_test

import (
	"strings"
	"testing"

	"bulletprime"
)

// shardedCfg is the façade sharded-run fixture: 4 clusters of 25 on the
// clustered preset, running the scalefill reference workload.
func shardedCfg(seed int64, workers int) bulletprime.RunConfig {
	return bulletprime.RunConfig{
		Protocol:     bulletprime.ProtocolScalefill,
		Nodes:        100,
		FileBytes:    1.5e6,
		Network:      bulletprime.NetworkClustered,
		Seed:         seed,
		Deadline:     60,
		Engine:       bulletprime.EngineSharded,
		Shards:       4,
		ShardWorkers: workers,
	}
}

func TestShardedRunThroughFacade(t *testing.T) {
	res, err := bulletprime.Run(shardedCfg(7, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("sharded run did not finish")
	}
	if len(res.CompletionTimes) != 100 {
		t.Fatalf("%d completion times, want 100 (every node pulls)", len(res.CompletionTimes))
	}
}

// TestShardedFacadeWorkerEquivalence pins the façade path end to end: the
// cooperative single-goroutine oracle (ShardWorkers=1) and the parallel
// mode must return bit-identical results.
func TestShardedFacadeWorkerEquivalence(t *testing.T) {
	serial, err := bulletprime.Run(shardedCfg(11, 1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := bulletprime.Run(shardedCfg(11, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.CompletionTimes) != len(parallel.CompletionTimes) {
		t.Fatalf("completion counts differ: %d vs %d",
			len(serial.CompletionTimes), len(parallel.CompletionTimes))
	}
	for id, at := range serial.CompletionTimes {
		if bt := parallel.CompletionTimes[id]; bt != at {
			t.Fatalf("node %d: %v vs %v (not bit-identical)", id, at, bt)
		}
	}
	if serial.Elapsed != parallel.Elapsed {
		t.Fatalf("Elapsed differs: %v vs %v", serial.Elapsed, parallel.Elapsed)
	}
}

func TestShardedCompactNetworkPreset(t *testing.T) {
	cfg := shardedCfg(3, 0)
	cfg.Network = bulletprime.NetworkClusteredCompact
	res, err := bulletprime.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished || len(res.CompletionTimes) != 100 {
		t.Fatalf("compact sharded run: finished=%v completions=%d",
			res.Finished, len(res.CompletionTimes))
	}
}

func TestShardedConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*bulletprime.RunConfig)
		want string
	}{
		{"scenario", func(c *bulletprime.RunConfig) {
			c.Scenario = &bulletprime.Scenario{Name: "x"}
		}, "scenario"},
		{"dynamic bandwidth", func(c *bulletprime.RunConfig) {
			c.DynamicBandwidth = true
		}, "DynamicBandwidth"},
		{"sequential-only protocol", func(c *bulletprime.RunConfig) {
			c.Protocol = bulletprime.ProtocolBulletPrime
		}, "not registered for sharded"},
	}
	for _, tc := range cases {
		cfg := shardedCfg(1, 0)
		tc.mut(&cfg)
		if _, err := bulletprime.New(cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	// Shard knobs without the sharded engine are a misconfiguration, not a
	// silent no-op.
	cfg := bulletprime.RunConfig{Nodes: 10, FileBytes: 1e6, Shards: 4}
	if _, err := bulletprime.New(cfg); err == nil || !strings.Contains(err.Error(), "EngineSharded") {
		t.Errorf("Shards without sharded engine: error %v", err)
	}
}

func TestShardedSubscribeRejected(t *testing.T) {
	exp, err := bulletprime.New(shardedCfg(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Subscribe(bulletprime.ObserverConfig{}); err == nil {
		t.Fatal("Subscribe on a sharded session did not error")
	}
}
