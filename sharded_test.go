package bulletprime_test

import (
	"strings"
	"testing"

	"bulletprime"
)

// shardedCfg is the façade sharded-run fixture: 4 clusters of 25 on the
// clustered preset, running the scalefill reference workload.
func shardedCfg(seed int64, workers int) bulletprime.RunConfig {
	return bulletprime.RunConfig{
		Protocol:     bulletprime.ProtocolScalefill,
		Nodes:        100,
		FileBytes:    1.5e6,
		Network:      bulletprime.NetworkClustered,
		Seed:         seed,
		Deadline:     60,
		Engine:       bulletprime.EngineSharded,
		Shards:       4,
		ShardWorkers: workers,
	}
}

func TestShardedRunThroughFacade(t *testing.T) {
	res, err := bulletprime.Run(shardedCfg(7, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("sharded run did not finish")
	}
	if len(res.CompletionTimes) != 100 {
		t.Fatalf("%d completion times, want 100 (every node pulls)", len(res.CompletionTimes))
	}
}

// TestShardedFacadeWorkerEquivalence pins the façade path end to end: the
// cooperative single-goroutine oracle (ShardWorkers=1) and the parallel
// mode must return bit-identical results.
func TestShardedFacadeWorkerEquivalence(t *testing.T) {
	serial, err := bulletprime.Run(shardedCfg(11, 1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := bulletprime.Run(shardedCfg(11, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.CompletionTimes) != len(parallel.CompletionTimes) {
		t.Fatalf("completion counts differ: %d vs %d",
			len(serial.CompletionTimes), len(parallel.CompletionTimes))
	}
	for id, at := range serial.CompletionTimes {
		if bt := parallel.CompletionTimes[id]; bt != at {
			t.Fatalf("node %d: %v vs %v (not bit-identical)", id, at, bt)
		}
	}
	if serial.Elapsed != parallel.Elapsed {
		t.Fatalf("Elapsed differs: %v vs %v", serial.Elapsed, parallel.Elapsed)
	}
}

func TestShardedCompactNetworkPreset(t *testing.T) {
	cfg := shardedCfg(3, 0)
	cfg.Network = bulletprime.NetworkClusteredCompact
	res, err := bulletprime.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished || len(res.CompletionTimes) != 100 {
		t.Fatalf("compact sharded run: finished=%v completions=%d",
			res.Finished, len(res.CompletionTimes))
	}
}

func TestShardedConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*bulletprime.RunConfig)
		want string
	}{
		{"scenario", func(c *bulletprime.RunConfig) {
			c.Scenario = &bulletprime.Scenario{Name: "x"}
		}, "scenario"},
		{"dynamic bandwidth", func(c *bulletprime.RunConfig) {
			c.DynamicBandwidth = true
		}, "DynamicBandwidth"},
		{"sequential-only protocol", func(c *bulletprime.RunConfig) {
			c.Protocol = bulletprime.ProtocolBulletPrime
		}, "not registered for sharded"},
	}
	for _, tc := range cases {
		cfg := shardedCfg(1, 0)
		tc.mut(&cfg)
		if _, err := bulletprime.New(cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	// Shard knobs without the sharded engine are a misconfiguration, not a
	// silent no-op.
	cfg := bulletprime.RunConfig{Nodes: 10, FileBytes: 1e6, Shards: 4}
	if _, err := bulletprime.New(cfg); err == nil || !strings.Contains(err.Error(), "EngineSharded") {
		t.Errorf("Shards without sharded engine: error %v", err)
	}
}

// TestShardedObserverEquivalence pins the sharded observability contract at
// Scale1000: an observed sharded session — time-series sampling on, an
// observer subscribed — must return results bit-identical to the unobserved
// one-shot wrapper, because horizon-stepped sampling re-partitions the
// conservative windows without reordering any event. The CI race job runs
// this test by name.
func TestShardedObserverEquivalence(t *testing.T) {
	cfg := shardedCfg(5, 0)
	cfg.Nodes = 1000
	cfg.Deadline = 120

	oracle, err := bulletprime.Run(cfg) // unobserved, single Group.Run
	if err != nil {
		t.Fatal(err)
	}

	obsCfg := cfg
	obsCfg.SampleEvery = 2
	exp, err := bulletprime.New(obsCfg)
	if err != nil {
		t.Fatal(err)
	}
	o, err := exp.Subscribe(bulletprime.ObserverConfig{Every: 2})
	if err != nil {
		t.Fatalf("Subscribe on a sharded session: %v", err)
	}
	var streamed int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range o.Samples() {
			streamed++
		}
	}()
	observed, err := exp.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	<-done

	if streamed == 0 {
		t.Fatal("observer received no samples from the sharded run")
	}
	if len(observed.Series) == 0 {
		t.Fatal("observed sharded run recorded no time-series")
	}
	if !observed.Finished {
		t.Fatal("observed sharded run did not finish")
	}
	if len(observed.CompletionTimes) != len(oracle.CompletionTimes) {
		t.Fatalf("completion counts differ: observed %d vs oracle %d",
			len(observed.CompletionTimes), len(oracle.CompletionTimes))
	}
	for id, at := range oracle.CompletionTimes {
		if bt := observed.CompletionTimes[id]; bt != at {
			t.Fatalf("node %d: observed %v vs oracle %v (not bit-identical)", id, bt, at)
		}
	}
	if observed.Elapsed != oracle.Elapsed {
		t.Fatalf("Elapsed differs: observed %v vs oracle %v", observed.Elapsed, oracle.Elapsed)
	}
	// Merged shard samples must be monotone in time and account real bytes.
	last := -1.0
	for _, s := range observed.Series {
		if s.Time <= last {
			t.Fatalf("series not strictly time-ordered: %v after %v", s.Time, last)
		}
		last = s.Time
	}
	if tail := observed.Series[len(observed.Series)-1]; tail.Completed != 1000 || tail.DataBytes <= 0 {
		t.Fatalf("final sample: completed=%d dataBytes=%v, want 1000 and > 0", tail.Completed, tail.DataBytes)
	}
}

// Per-node progress meters live on shard-private runtimes; the PerNode
// observer option stays sequential-only.
func TestShardedPerNodeObserverRejected(t *testing.T) {
	exp, err := bulletprime.New(shardedCfg(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Subscribe(bulletprime.ObserverConfig{PerNode: true}); err == nil ||
		!strings.Contains(err.Error(), "PerNode") {
		t.Fatalf("PerNode Subscribe on a sharded session: error %v, want PerNode rejection", err)
	}
}
