package bulletprime_test

import (
	"context"
	"strings"
	"testing"

	"bulletprime"
)

// TestObserverDropOldestStalledReader pins the slow-consumer policy: a
// consumer that never reads while the run executes must not stall the
// simulation, and when it finally drains it finds the most recent Buffer
// samples — drop-oldest, with Dropped() counting the losses.
func TestObserverDropOldestStalledReader(t *testing.T) {
	exp, err := bulletprime.New(bulletprime.RunConfig{
		Nodes:       10,
		FileBytes:   1e6,
		Seed:        3,
		Deadline:    3600,
		SampleEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	o, err := exp.Subscribe(bulletprime.ObserverConfig{Every: 1, Buffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	// No consumer runs until the experiment is over: the reader is stalled
	// for the entire run.
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var kept []bulletprime.Sample
	for s := range o.Samples() {
		kept = append(kept, s)
	}
	if len(kept) != 4 {
		t.Fatalf("stalled reader drained %d samples, want exactly the Buffer 4", len(kept))
	}
	if o.Dropped() == 0 {
		t.Fatal("Dropped() = 0 after overrunning a 4-sample buffer")
	}
	// Drop-oldest retains the newest window: the drained head is well past
	// the run's first sample, and the drained tail sits within one cadence
	// of the series tail (the closing flush itself is below the observer's
	// cadence gate, so the last on-cadence sample is the newest emitted).
	tail := res.Series[len(res.Series)-1]
	if kept[0].Time <= res.Series[0].Time {
		t.Fatalf("first drained sample t=%.2f: the oldest samples were not the ones dropped", kept[0].Time)
	}
	if kept[3].Time < tail.Time-1 {
		t.Fatalf("last drained sample t=%.2f is stale (series tail t=%.2f): newest samples were dropped",
			kept[3].Time, tail.Time)
	}
	for i := 1; i < len(kept); i++ {
		if kept[i].Time <= kept[i-1].Time {
			t.Fatalf("drained samples out of order: %.2f after %.2f", kept[i].Time, kept[i-1].Time)
		}
	}
}

// TestObserverCtxCancelTeardown cancels a run mid-flight and checks
// observer teardown: every Samples() channel closes exactly once (a double
// close would panic here) and the session still reports its partial result.
// The CI race job runs the whole test file under -race, which would flag a
// send-on-closed or close-vs-send race in the teardown path.
func TestObserverCtxCancelTeardown(t *testing.T) {
	exp, err := bulletprime.New(bulletprime.RunConfig{
		Nodes:     60,
		FileBytes: 20e6,
		Seed:      5,
		Deadline:  3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two observers, so teardown closes more than one stream.
	first, err := exp.Subscribe(bulletprime.ObserverConfig{Every: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	second, err := exp.Subscribe(bulletprime.ObserverConfig{Every: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	drained := make(chan int, 2)
	go func() {
		n := 0
		for range first.Samples() {
			if n == 0 {
				cancel() // first sample: the run is mid-flight, stop it
			}
			n++
		}
		drained <- n
	}()
	go func() {
		n := 0
		for range second.Samples() {
			n++
		}
		drained <- n
	}()
	res, err := exp.Run(ctx)
	if err != nil && res == nil {
		t.Fatal(err)
	}
	<-drained
	<-drained // both ranges ended: both channels closed
	if !res.Cancelled {
		t.Fatal("mid-run cancel did not mark the result cancelled")
	}
	if len(res.CompletionTimes) == 59 {
		t.Fatal("cancelled run reports a full completion set; cancel landed after the end")
	}
}

// TestTestbedObserverGauges streams samples from a real-socket loopback run
// and checks the transport gauges ride along: measured RTT, and — with
// injected loss — retransmit and drop counters.
func TestTestbedObserverGauges(t *testing.T) {
	cfg := testbedCfg()
	cfg.Testbed.DropProb = 0.05
	cfg.Testbed.DropSeed = 9
	cfg.SampleEvery = 5
	exp, err := bulletprime.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o, err := exp.Subscribe(bulletprime.ObserverConfig{Every: 5})
	if err != nil {
		t.Fatalf("Subscribe on a testbed session: %v", err)
	}
	var streamed []bulletprime.Sample
	done := make(chan struct{})
	go func() {
		defer close(done)
		for s := range o.Samples() {
			streamed = append(streamed, s)
		}
	}()
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if !res.Finished {
		t.Fatal("observed testbed run did not finish")
	}
	if len(streamed) == 0 {
		t.Fatal("testbed observer received no samples")
	}
	if len(res.Series) == 0 {
		t.Fatal("observed testbed run recorded no time-series")
	}
	sawRTT := false
	for _, s := range res.Series {
		if s.TestbedRTTp50 > 0 {
			sawRTT = true
			if s.TestbedRTTMax < s.TestbedRTTp50 {
				t.Fatalf("RTT max %.4f below p50 %.4f", s.TestbedRTTMax, s.TestbedRTTp50)
			}
		}
	}
	if !sawRTT {
		t.Fatal("no sample carried a measured RTT")
	}
	tail := res.Series[len(res.Series)-1]
	if tail.TestbedInjectedDrops == 0 {
		t.Fatal("5% injected loss produced no InjectedDrops gauge")
	}
	if tail.TestbedRetransmits == 0 {
		t.Fatal("injected loss produced no retransmissions")
	}
	if tail.DataBytes <= 0 {
		t.Fatalf("final sample DataBytes = %v, want real delivered bytes", tail.DataBytes)
	}
}

// TestTraceReportSequential runs one traced session and checks the report
// shape — and that tracing is observation only: the traced run's results
// are bit-identical to the untraced run of the same config.
func TestTraceReportSequential(t *testing.T) {
	cfg := bulletprime.RunConfig{
		Nodes:     10,
		FileBytes: 1e6,
		Seed:      3,
		Deadline:  3600,
	}
	untraced, err := bulletprime.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if untraced.Trace != nil {
		t.Fatal("untraced run carries a trace report")
	}

	traced := cfg
	traced.Trace = &bulletprime.TraceOptions{}
	res, err := bulletprime.Run(traced)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Trace
	if rep == nil {
		t.Fatal("traced run returned no trace report")
	}
	if len(rep.Spans) == 0 || rep.Counts["promote"] == 0 {
		t.Fatalf("trace: %d spans, counts %v; want promote spans", len(rep.Spans), rep.Counts)
	}
	last := -1.0
	for _, s := range rep.Spans {
		if s.At < last {
			t.Fatalf("spans out of time order: %.4f after %.4f", s.At, last)
		}
		last = s.At
	}
	for id, at := range untraced.CompletionTimes {
		if bt := res.CompletionTimes[id]; bt != at {
			t.Fatalf("node %d: traced %v vs untraced %v (tracing steered the run)", id, bt, at)
		}
	}
	if res.Elapsed != untraced.Elapsed {
		t.Fatalf("Elapsed differs traced vs untraced: %v vs %v", res.Elapsed, untraced.Elapsed)
	}
}

// TestTraceShardedDeterministic pins the cross-shard trace merge: the span
// sequence of a traced sharded run is a pure function of (seed, shards),
// identical between the serial oracle and parallel workers.
func TestTraceShardedDeterministic(t *testing.T) {
	run := func(workers int) *bulletprime.TraceReport {
		cfg := shardedCfg(11, workers)
		cfg.Trace = &bulletprime.TraceOptions{}
		res, err := bulletprime.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Trace == nil || len(res.Trace.Spans) == 0 {
			t.Fatal("traced sharded run returned no spans")
		}
		return res.Trace
	}
	serial, parallel := run(1), run(0)
	if len(serial.Spans) != len(parallel.Spans) {
		t.Fatalf("span counts differ: serial %d vs parallel %d", len(serial.Spans), len(parallel.Spans))
	}
	for i := range serial.Spans {
		if serial.Spans[i] != parallel.Spans[i] {
			t.Fatalf("span %d differs: serial %+v vs parallel %+v (merge not deterministic)",
				i, serial.Spans[i], parallel.Spans[i])
		}
	}
	if serial.Dropped != parallel.Dropped {
		t.Fatalf("Dropped differs: %d vs %d", serial.Dropped, parallel.Dropped)
	}
}

func TestTraceOptionValidation(t *testing.T) {
	cfg := bulletprime.RunConfig{Nodes: 10, FileBytes: 1e6, Trace: &bulletprime.TraceOptions{Capacity: -1}}
	if _, err := bulletprime.New(cfg); err == nil || !strings.Contains(err.Error(), "Trace") {
		t.Fatalf("negative trace capacity: error %v, want a Trace validation error", err)
	}
}
